//! The four studied technology nodes and their Table 1 parameters.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::device::DeviceParams;
use crate::FO4_PER_CYCLE;

/// One of the four CMOS technology generations studied in the paper.
///
/// The associated circuit parameters reproduce Table 1:
///
/// | Feature size (nm) | 180 | 130 | 100 | 70  |
/// |-------------------|-----|-----|-----|-----|
/// | Supply voltage (V)| 1.8 | 1.5 | 1.2 | 1.0 |
/// | Clock (GHz)       | 2.0 | 2.7 | 3.5 | 5.0 |
///
/// # Examples
///
/// ```
/// use bitline_cmos::TechnologyNode;
///
/// let newest = TechnologyNode::ALL.last().copied().unwrap();
/// assert_eq!(newest, TechnologyNode::N70);
/// assert_eq!(newest.to_string(), "70nm");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TechnologyNode {
    /// 180 nm (recent past at publication time, 1.8 V, 2.0 GHz).
    N180,
    /// 130 nm (1.5 V, 2.7 GHz).
    N130,
    /// 100 nm (1.2 V, 3.5 GHz).
    N100,
    /// 70 nm (near future at publication time, 1.0 V, 5.0 GHz).
    N70,
}

impl TechnologyNode {
    /// All nodes, from oldest (180 nm) to newest (70 nm).
    pub const ALL: [TechnologyNode; 4] =
        [TechnologyNode::N180, TechnologyNode::N130, TechnologyNode::N100, TechnologyNode::N70];

    /// Drawn feature size in nanometres.
    #[must_use]
    pub const fn feature_nm(self) -> u32 {
        match self {
            TechnologyNode::N180 => 180,
            TechnologyNode::N130 => 130,
            TechnologyNode::N100 => 100,
            TechnologyNode::N70 => 70,
        }
    }

    /// Feature size in micrometres (convenience for capacitance math).
    #[must_use]
    pub fn feature_um(self) -> f64 {
        f64::from(self.feature_nm()) / 1000.0
    }

    /// Supply voltage in volts (Table 1).
    #[must_use]
    pub const fn vdd(self) -> f64 {
        match self {
            TechnologyNode::N180 => 1.8,
            TechnologyNode::N130 => 1.5,
            TechnologyNode::N100 => 1.2,
            TechnologyNode::N70 => 1.0,
        }
    }

    /// Clock frequency in gigahertz (Table 1). Matches an 8-FO4 cycle.
    #[must_use]
    pub const fn clock_ghz(self) -> f64 {
        match self {
            TechnologyNode::N180 => 2.0,
            TechnologyNode::N130 => 2.7,
            TechnologyNode::N100 => 3.5,
            TechnologyNode::N70 => 5.0,
        }
    }

    /// Clock cycle time in nanoseconds.
    #[must_use]
    pub fn cycle_time_ns(self) -> f64 {
        1.0 / self.clock_ghz()
    }

    /// Delay of one fanout-of-four inverter in nanoseconds.
    ///
    /// The cycle is 8 FO4 for every node, so the FO4 delay is simply
    /// `cycle_time / 8`.
    #[must_use]
    pub fn fo4_delay_ns(self) -> f64 {
        self.cycle_time_ns() / FO4_PER_CYCLE
    }

    /// Zero-based generation index (180 nm = 0, ..., 70 nm = 3).
    ///
    /// Used by the scaling laws: each step halves switching energy and grows
    /// leakage power by ~3.5x.
    #[must_use]
    pub const fn generation(self) -> u32 {
        match self {
            TechnologyNode::N180 => 0,
            TechnologyNode::N130 => 1,
            TechnologyNode::N100 => 2,
            TechnologyNode::N70 => 3,
        }
    }

    /// The device parameter set for this node.
    #[must_use]
    pub fn device_params(self) -> DeviceParams {
        DeviceParams::for_node(self)
    }

    /// The next (smaller) node, if any.
    #[must_use]
    pub fn next(self) -> Option<TechnologyNode> {
        match self {
            TechnologyNode::N180 => Some(TechnologyNode::N130),
            TechnologyNode::N130 => Some(TechnologyNode::N100),
            TechnologyNode::N100 => Some(TechnologyNode::N70),
            TechnologyNode::N70 => None,
        }
    }
}

impl fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm())
    }
}

/// Error returned when parsing a [`TechnologyNode`] from a string fails.
///
/// # Examples
///
/// ```
/// use bitline_cmos::TechnologyNode;
///
/// let err = "90nm".parse::<TechnologyNode>().unwrap_err();
/// assert!(err.to_string().contains("90nm"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNodeError {
    input: String,
}

impl fmt::Display for ParseNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technology node `{}` (expected one of 180nm, 130nm, 100nm, 70nm)",
            self.input
        )
    }
}

impl std::error::Error for ParseNodeError {}

impl FromStr for TechnologyNode {
    type Err = ParseNodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim().trim_end_matches("nm");
        match trimmed {
            "180" => Ok(TechnologyNode::N180),
            "130" => Ok(TechnologyNode::N130),
            "100" => Ok(TechnologyNode::N100),
            "70" => Ok(TechnologyNode::N70),
            _ => Err(ParseNodeError { input: s.to_owned() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_and_without_suffix() {
        assert_eq!("180nm".parse::<TechnologyNode>().unwrap(), TechnologyNode::N180);
        assert_eq!("70".parse::<TechnologyNode>().unwrap(), TechnologyNode::N70);
        assert_eq!(" 130nm ".parse::<TechnologyNode>().unwrap(), TechnologyNode::N130);
        assert!("45nm".parse::<TechnologyNode>().is_err());
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for node in TechnologyNode::ALL {
            let shown = node.to_string();
            assert_eq!(shown.parse::<TechnologyNode>().unwrap(), node);
        }
    }

    #[test]
    fn generations_are_sequential() {
        for (expected, node) in TechnologyNode::ALL.into_iter().enumerate() {
            assert_eq!(node.generation(), u32::try_from(expected).unwrap());
        }
    }

    #[test]
    fn next_walks_the_roadmap() {
        assert_eq!(TechnologyNode::N180.next(), Some(TechnologyNode::N130));
        assert_eq!(TechnologyNode::N70.next(), None);
    }

    #[test]
    fn cycle_time_shrinks_with_scaling() {
        for pair in TechnologyNode::ALL.windows(2) {
            assert!(pair[0].cycle_time_ns() > pair[1].cycle_time_ns());
        }
    }
}
