//! CMOS technology-node parameters and scaling laws.
//!
//! This crate is the lowest-level substrate of the `bitline` workspace. It
//! captures the circuit parameters of Table 1 in Yang & Falsafi (MICRO-36,
//! 2003) — feature size, supply voltage and clock frequency for the four
//! studied nodes (180 nm, 130 nm, 100 nm, 70 nm) — together with the device
//! parameters the circuit models need: gate/drain capacitances, drive and
//! subthreshold leakage currents, and wire parasitics.
//!
//! The scaling behaviour follows the trends the paper relies on (Borkar,
//! *Design challenges of technology scaling*, IEEE Micro 1999): switching
//! energy halves per generation while leakage power grows by roughly 3.5x.
//! Those two trends are what make bitline isolation cheap in future nodes
//! (Figure 2 of the paper) and expensive in past ones.
//!
//! # Examples
//!
//! ```
//! use bitline_cmos::TechnologyNode;
//!
//! let node = TechnologyNode::N70;
//! assert_eq!(node.feature_nm(), 70);
//! assert!((node.vdd() - 1.0).abs() < 1e-9);
//! // 5 GHz clock, 8 FO4 per cycle.
//! assert!((node.cycle_time_ns() - 0.2).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod node;
mod scaling;
pub mod vdd;

pub use device::DeviceParams;
pub use node::{ParseNodeError, TechnologyNode};
pub use scaling::{leakage_power_growth_per_generation, switching_energy_shrink_per_generation};

/// Number of fanout-of-four inverter delays per pipeline stage / clock cycle.
///
/// The paper assumes an aggressive 8-FO4 clock period for every node
/// (Hrishikesh et al., ISCA 2002), which keeps the pipeline depth and the
/// cycle-counted access penalties of the major structures constant across
/// technologies.
pub const FO4_PER_CYCLE: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_expose_table1_parameters() {
        let table: &[(TechnologyNode, u32, f64, f64)] = &[
            (TechnologyNode::N180, 180, 1.8, 2.0),
            (TechnologyNode::N130, 130, 1.5, 2.7),
            (TechnologyNode::N100, 100, 1.2, 3.5),
            (TechnologyNode::N70, 70, 1.0, 5.0),
        ];
        for &(node, feature, vdd, ghz) in table {
            assert_eq!(node.feature_nm(), feature);
            assert!((node.vdd() - vdd).abs() < 1e-12, "vdd for {node}");
            assert!((node.clock_ghz() - ghz).abs() < 1e-12, "clock for {node}");
        }
    }

    #[test]
    fn fo4_delay_tracks_cycle_time() {
        for node in TechnologyNode::ALL {
            let fo4 = node.fo4_delay_ns();
            assert!((fo4 * FO4_PER_CYCLE - node.cycle_time_ns()).abs() < 1e-12);
        }
    }
}
