//! Criterion micro-benchmarks for the columnar trace store.
//!
//! Splits the two costs a shared trace has: *materialisation*, which
//! generates and encodes columnar segments once per stream, and
//! *replay*, the zero-copy decode of already-shared segments that every
//! cursor pays. A hot-loop change to the codec shows up here long
//! before it moves the end-to-end headline smoke.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bitline_exec::TraceStore;
use bitline_trace::TraceSource;

/// 16 segments' worth — enough to amortise cursor/segment handoff.
const INSTRS: usize = 65_536;

fn consume(store: &TraceStore) -> u64 {
    let mut cursor = store.cursor("gcc", 1).expect("gcc is in the suite");
    let mut acc = 0u64;
    for _ in 0..INSTRS {
        acc = acc.wrapping_add(cursor.next_instr().pc);
    }
    acc
}

fn bench_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("traces");
    g.throughput(Throughput::Elements(INSTRS as u64));
    // Cold: every iteration generates and encodes the stream afresh.
    g.bench_function("materialise_64k_gcc", |b| {
        b.iter(|| {
            let store = TraceStore::new();
            consume(&store)
        });
    });
    // Warm: the stream is materialised once; iterations only decode the
    // shared columnar segments through a fresh cursor.
    g.bench_function("replay_64k_gcc_warm", |b| {
        let store = TraceStore::new();
        let _ = consume(&store);
        b.iter(|| consume(&store));
    });
    g.finish();
}

criterion_group!(benches, bench_traces);
criterion_main!(benches);
