//! Concurrent memoization with per-key once-only computation.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Hit/miss counters and size of a [`MemoCache`].
///
/// Because each key is computed exactly once (under its slot lock), the
/// counters are deterministic for a deterministic workload: they do not
/// depend on the job count or on scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Completed entries currently stored.
    pub entries: usize,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} hits, {} misses, {} entries", self.hits, self.misses, self.entries)
    }
}

/// A value slot: `None` until its first successful computation.
type Slot<V> = Mutex<Option<V>>;

/// A concurrent memoization table.
///
/// Unlike a plain `Mutex<HashMap>`, computation happens under a *per-key*
/// lock: concurrent requests for the same key compute it once (the losers
/// block briefly and read the winner's value), while requests for
/// different keys never contend beyond the brief map lookup. A failed
/// computation leaves the slot empty so a later request can retry.
///
/// Locks are poison-tolerant — a panic inside the computing closure (the
/// experiment harness catches those) leaves the slot empty, not wedged.
///
/// Re-entrancy on the *same key* from the computing closure would
/// deadlock; computations must not consult the cache they are filling with
/// their own key.
#[derive(Debug, Default)]
pub struct MemoCache<K, V> {
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Global-registry mirrors of `hits` / `misses` for named caches.
    /// Unlike the local counters these survive [`MemoCache::clear`], so a
    /// cumulative metrics export still reflects all traffic.
    obs: Option<(Arc<bitline_obs::Counter>, Arc<bitline_obs::Counter>)>,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<K: Eq + Hash, V: Clone> MemoCache<K, V> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> MemoCache<K, V> {
        MemoCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs: None,
        }
    }

    /// An empty cache that mirrors its hit/miss counters into the global
    /// metrics registry as `{name}.hits` / `{name}.misses`. The registry
    /// handles are interned here, once, so the lookup path stays one
    /// relaxed atomic add per counter.
    #[must_use]
    pub fn named(name: &str) -> MemoCache<K, V> {
        let registry = bitline_obs::registry();
        MemoCache {
            obs: Some((
                registry.counter(&format!("{name}.hits")),
                registry.counter(&format!("{name}.misses")),
            )),
            ..MemoCache::new()
        }
    }

    /// Returns the cached value for `key`, computing it with `f` on first
    /// use. `Err` results are returned but **not** cached.
    ///
    /// # Errors
    ///
    /// Whatever `f` returns; the slot stays empty in that case.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: K,
        f: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        let slot = Arc::clone(relock(self.slots.lock()).entry(key).or_default());
        let mut value = relock(slot.lock());
        if let Some(v) = value.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some((hits, _)) = &self.obs {
                hits.incr();
            }
            return Ok(v.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some((_, misses)) = &self.obs {
            misses.incr();
        }
        let v = f()?;
        *value = Some(v.clone());
        Ok(v)
    }

    /// Infallible [`MemoCache::get_or_try_insert_with`].
    pub fn get_or_insert_with(&self, key: K, f: impl FnOnce() -> V) -> V {
        self.get_or_try_insert_with(key, || Ok::<V, std::convert::Infallible>(f()))
            .unwrap_or_else(|e| match e {})
    }

    /// Stores `value` for `key` without touching the hit/miss counters;
    /// the first write wins if the key is already filled. Used to warm
    /// the cache from a checkpoint journal before any lookups happen.
    pub fn insert(&self, key: K, value: V) {
        let slot = Arc::clone(relock(self.slots.lock()).entry(key).or_default());
        let mut stored = relock(slot.lock());
        if stored.is_none() {
            *stored = Some(value);
        }
    }

    /// Current counters and completed-entry count.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let entries = relock(self.slots.lock())
            .values()
            .filter(|slot| slot.try_lock().is_ok_and(|v| v.is_some()))
            .count();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every entry and resets the counters (for cold-vs-warm
    /// comparisons in tests and the CI smoke target).
    pub fn clear(&self) {
        relock(self.slots.lock()).clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool;

    #[test]
    fn second_lookup_hits() {
        let cache: MemoCache<&'static str, u32> = MemoCache::new();
        assert_eq!(cache.get_or_insert_with("a", || 1), 1);
        assert_eq!(cache.get_or_insert_with("a", || unreachable!()), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, entries: 1 });
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: MemoCache<u8, u8> = MemoCache::new();
        let r: Result<u8, &str> = cache.get_or_try_insert_with(1, || Err("nope"));
        assert_eq!(r, Err("nope"));
        assert_eq!(cache.get_or_try_insert_with(1, || Ok::<_, &str>(9)), Ok(9));
        // Both attempts count as misses; only the success is stored.
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2, entries: 1 });
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        let computed = AtomicU64::new(0);
        let out = pool::with_jobs(8, || {
            pool::run_indexed(32, |_| {
                cache.get_or_insert_with(42, || {
                    computed.fetch_add(1, Ordering::Relaxed);
                    7
                })
            })
        });
        assert!(out.iter().all(|&v| v == 7));
        assert_eq!(computed.load(Ordering::Relaxed), 1, "one computation for 32 requests");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (31, 1, 1));
    }

    #[test]
    fn panicking_fill_leaves_the_slot_retryable() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_insert_with(5, || panic!("poisoned fill"))
        }));
        assert!(attempt.is_err());
        assert_eq!(cache.get_or_insert_with(5, || 11), 11);
    }

    #[test]
    fn insert_warms_without_counting_and_first_write_wins() {
        let cache: MemoCache<&'static str, u32> = MemoCache::new();
        cache.insert("warm", 7);
        cache.insert("warm", 9); // loses: first write wins
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 0, entries: 1 });
        assert_eq!(cache.get_or_insert_with("warm", || unreachable!()), 7);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 0, entries: 1 });
    }

    #[test]
    fn named_cache_mirrors_into_the_global_registry() {
        let cache: MemoCache<u8, u8> = MemoCache::named("exec.test.memo_mirror");
        let before = bitline_obs::registry().snapshot();
        let _ = cache.get_or_insert_with(1, || 1);
        let _ = cache.get_or_insert_with(1, || unreachable!());
        cache.clear();
        let _ = cache.get_or_insert_with(1, || 2);
        let after = bitline_obs::registry().snapshot();
        let hits = after.counters["exec.test.memo_mirror.hits"]
            - before.counters.get("exec.test.memo_mirror.hits").copied().unwrap_or(0);
        let misses = after.counters["exec.test.memo_mirror.misses"]
            - before.counters.get("exec.test.memo_mirror.misses").copied().unwrap_or(0);
        assert_eq!((hits, misses), (1, 2), "mirror counters survive clear()");
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1, entries: 1 });
    }

    #[test]
    fn clear_resets_everything() {
        let cache: MemoCache<u8, u8> = MemoCache::new();
        let _ = cache.get_or_insert_with(1, || 1);
        let _ = cache.get_or_insert_with(1, || unreachable!());
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.get_or_insert_with(1, || 3), 3);
    }
}
