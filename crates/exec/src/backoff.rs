//! Deterministic jittered backoff, shared by every retry path.
//!
//! Two consumers, one arithmetic: the experiment harness sleeps a
//! [`retry_backoff`] before re-running a failed unit, and the serving
//! layer stamps shed responses with a `retry_after_ms` hint built on the
//! same [`jittered`] spread. Both want the same property — concurrent
//! retries de-synchronise without a random number generator — so the
//! jitter is a pure function of the unit's name: reproducible across
//! processes, different across names.

use std::time::Duration;

/// FNV-1a hash of `bytes` (the jitter seed and the spec-key hash).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// `base` plus a deterministic jitter in `0..spread_ms` milliseconds
/// derived from `seed`. Equal seeds always get equal delays; different
/// seeds usually spread out. A zero `spread_ms` means no jitter at all.
#[must_use]
pub fn jittered(seed: &str, base: Duration, spread_ms: u64) -> Duration {
    let jitter = if spread_ms == 0 { 0 } else { fnv64(seed.as_bytes()) % spread_ms };
    base + Duration::from_millis(jitter)
}

/// Deterministic jittered backoff before retrying `name`: a small base
/// delay plus a jitter derived from the run name, so concurrent retries
/// de-synchronise while the suite stays reproducible.
#[must_use]
pub fn retry_backoff(name: &str) -> Duration {
    jittered(name, Duration::from_millis(5), 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        assert_eq!(fnv64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        // Pin the exact value, not just stability: both retry sleeps and
        // shed hints must agree across processes and releases.
        let expected = Duration::from_millis(5 + fnv64(b"health@42") % 16);
        assert_eq!(retry_backoff("health@42"), expected);
        assert_eq!(retry_backoff("health@42"), retry_backoff("health@42"));
        for name in ["gcc", "mesa", "art", "tsp", "health"] {
            let d = retry_backoff(name);
            assert!(
                d >= Duration::from_millis(5) && d < Duration::from_millis(21),
                "{name}: {d:?}"
            );
        }
        // Different names usually land on different jitter.
        let distinct: std::collections::HashSet<_> =
            ["gcc", "mesa", "art", "tsp", "health"].iter().map(|n| retry_backoff(n)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn jittered_spread_is_a_half_open_range() {
        for seed in ["a", "b", "c", "long-key@0123456789abcdef"] {
            let d = jittered(seed, Duration::from_millis(10), 8);
            assert!(d >= Duration::from_millis(10) && d < Duration::from_millis(18));
        }
        assert_eq!(jittered("anything", Duration::from_millis(7), 0), Duration::from_millis(7));
    }
}
