//! Scoped work pool for suite-wide experiments.
//!
//! [`run_indexed`] fans `n` independent units of work out over a set of
//! scoped worker threads and reassembles the results *by index*, so the
//! output is identical whatever the job count or scheduling order. It is
//! safe to drive the simulator with: each run is self-contained
//! (`Rc`/`RefCell` only ever live inside one run) and run results are
//! owned `Send` data.
//!
//! The job count resolves, in order of precedence:
//!
//! 1. a thread-local override installed by [`with_jobs`] (tests),
//! 2. a process-global override installed by [`set_jobs`] (the
//!    `bitline-sim --jobs` flag),
//! 3. the `BITLINE_JOBS` environment variable,
//! 4. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bitline_obs::{counter, gauge, histo};

use crate::supervise::CancelToken;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-global override; 0 means "unset".
static GLOBAL: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads [`run_indexed`] will use (at least 1).
#[must_use]
pub fn jobs() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    let global = GLOBAL.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(n) =
        std::env::var("BITLINE_JOBS").ok().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Installs a process-global job count (the `--jobs` CLI flag). Pass 0 to
/// clear the override.
pub fn set_jobs(n: usize) {
    GLOBAL.store(n, Ordering::Relaxed);
}

/// Parses a job-count value (`--jobs`, `BITLINE_JOBS`), rejecting zero and
/// garbage with an actionable message instead of the silent fallback
/// [`jobs`] applies. Zero is an error, not "auto": a pool with no workers
/// would hang every batch, so it fails fast like `--scrub-period 0` does.
///
/// # Errors
///
/// A message naming the offending value and the accepted form.
pub fn parse_jobs_value(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(0) => {
            Err("job count must be at least 1 (0 would run no workers; unset for auto)".into())
        }
        Ok(n) => Ok(n),
        Err(_) => Err(format!("invalid job count `{v}` (want a positive integer)")),
    }
}

/// Validates `BITLINE_JOBS` at startup so a typo fails fast instead of
/// being silently ignored by [`jobs`]'s lenient fallback. Returns the
/// validated count, or `None` when the variable is unset.
///
/// # Errors
///
/// The [`parse_jobs_value`] message, prefixed with the variable name.
pub fn jobs_from_env() -> Result<Option<usize>, String> {
    match std::env::var("BITLINE_JOBS") {
        Err(_) => Ok(None),
        Ok(v) => parse_jobs_value(&v).map(Some).map_err(|e| format!("BITLINE_JOBS: {e}")),
    }
}

/// Runs `f` with the job count pinned to `n` on this thread (nested calls
/// restore the previous override). Used by determinism tests to compare
/// serial and parallel executions without touching the environment.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|o| o.replace(Some(n)));
    // Restore on unwind too, so a panicking closure cannot leak the pin
    // into unrelated tests on the same thread.
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Maps `f` over `0..n` on [`jobs`] scoped worker threads, returning the
/// results in index order.
///
/// Work is handed out through a shared atomic counter, so long units do
/// not convoy behind short ones. With one job (or one unit) the work runs
/// inline on the caller's thread — byte-identical to the pre-parallel
/// drivers.
///
/// # Panics
///
/// Propagates a panic from `f`. Callers that need per-unit isolation wrap
/// `f` in their own `catch_unwind` (as `bitline-sim`'s experiment harness
/// does) so one poisoned run cannot take down the whole suite.
pub fn run_indexed<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_indexed_supervised(n, None, |i, _| f(i))
}

/// [`run_indexed`] with per-unit supervision: each unit receives a fresh
/// [`CancelToken`] armed with `budget` (or an unbounded token when
/// `budget` is `None`).
///
/// The token is created by the worker *when the unit is picked up*, not
/// at submission, so queueing delay behind earlier units is never charged
/// against a unit's budget. `f` is expected to poll
/// [`CancelToken::cancelled`] and return an error value when asked to
/// stop; the pool itself never kills a unit.
///
/// # Panics
///
/// Propagates a panic from `f`, like [`run_indexed`].
pub fn run_indexed_supervised<T: Send>(
    n: usize,
    budget: Option<Duration>,
    f: impl Fn(usize, &CancelToken) -> T + Sync,
) -> Vec<T> {
    let workers = jobs().min(n);
    let units = u64::try_from(n).unwrap_or(u64::MAX);
    counter!("exec.pool.batches").incr();
    counter!("exec.pool.units").add(units);
    gauge!("exec.pool.workers").set(i64::try_from(workers).unwrap_or(i64::MAX));
    if workers <= 1 {
        counter!("exec.pool.inline_units").add(units);
        return (0..n)
            .map(|i| {
                bitline_failpoint::failpoint!("pool.worker");
                f(i, &CancelToken::for_budget(budget))
            })
            .collect();
    }
    // All units are submitted at once, so a unit's queue wait is the time
    // from batch start to its pickup by a worker.
    let submitted = Instant::now();
    let next = AtomicUsize::new(0);
    let mut collected = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let f = &f;
                std::thread::Builder::new()
                    .name(format!("exec-worker-{w}"))
                    .spawn_scoped(s, move || {
                        let spawned = Instant::now();
                        let mut busy = Duration::ZERO;
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            // Worker pickup seam: a `pool.worker=panic`
                            // schedule exercises the batch's isolation
                            // story; delay/stall model a descheduled core.
                            bitline_failpoint::failpoint!("pool.worker");
                            histo!("exec.pool.queue_wait_us").record_duration(submitted.elapsed());
                            let picked = Instant::now();
                            out.push((i, f(i, &CancelToken::for_budget(budget))));
                            busy += picked.elapsed();
                        }
                        histo!("exec.pool.worker_busy_us").record_duration(busy);
                        histo!("exec.pool.worker_idle_us")
                            .record_duration(spawned.elapsed().saturating_sub(busy));
                        out
                    })
                    .expect("spawn exec worker")
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("exec worker panicked"))
            .collect::<Vec<(usize, T)>>()
    });
    collected.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(collected.len(), n);
    counter!("exec.pool.reassembled").add(units);
    collected.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = with_jobs(8, || {
            run_indexed(64, |i| {
                // Finish in roughly reverse order to stress reassembly.
                std::thread::sleep(std::time::Duration::from_micros(64 - i as u64));
                i * 2
            })
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = with_jobs(1, || run_indexed(33, |i| i * i + 1));
        let parallel = with_jobs(7, || run_indexed(33, |i| i * i + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn with_jobs_pins_and_restores() {
        let outer = jobs();
        with_jobs(3, || {
            assert_eq!(jobs(), 3);
            with_jobs(5, || assert_eq!(jobs(), 5));
            assert_eq!(jobs(), 3);
        });
        assert_eq!(jobs(), outer);
    }

    #[test]
    fn with_jobs_restores_on_panic() {
        let outer = jobs();
        let caught = std::panic::catch_unwind(|| with_jobs(9, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(jobs(), outer);
    }

    #[test]
    fn zero_units_is_fine() {
        let out: Vec<u32> = with_jobs(4, || run_indexed(0, |_| unreachable!()));
        assert!(out.is_empty());
    }

    #[test]
    fn supervised_units_get_fresh_tokens_with_the_budget() {
        let budget = Duration::from_secs(3600);
        let out = with_jobs(4, || {
            run_indexed_supervised(8, Some(budget), |i, token| {
                assert!(!token.cancelled());
                assert_eq!(token.budget(), Some(budget));
                i
            })
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn supervised_zero_budget_is_observed_by_every_unit() {
        let cancelled = with_jobs(3, || {
            run_indexed_supervised(6, Some(Duration::ZERO), |_, token| token.cancelled())
        });
        assert!(cancelled.iter().all(|&c| c));
    }

    #[test]
    fn parse_jobs_value_rejects_zero_and_garbage() {
        assert!(parse_jobs_value("0").unwrap_err().contains("at least 1"));
        assert!(parse_jobs_value("-3").unwrap_err().contains("invalid job count"));
        assert!(parse_jobs_value("many").unwrap_err().contains("invalid job count"));
        assert!(parse_jobs_value("").unwrap_err().contains("invalid job count"));
        assert_eq!(parse_jobs_value("1"), Ok(1));
        assert_eq!(parse_jobs_value(" 8 "), Ok(8));
    }

    #[test]
    fn every_index_is_visited_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let visits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        with_jobs(6, || {
            run_indexed(100, |i| {
                visits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(visits.iter().all(|v| v.load(Ordering::Relaxed) == 1));
    }
}
