//! Crash-safe append-only checkpoint journal.
//!
//! A [`Journal`] records completed units of work so a killed sweep can be
//! resumed without recomputing the finished prefix. The format is built
//! for exactly one failure model — the process dies (crash, SIGKILL, power
//! loss) at an arbitrary byte boundary — and favours simplicity over
//! density:
//!
//! ```text
//! file   := magic entry*
//! magic  := "BLJRNL1\n"                      (8 bytes)
//! entry  := len:u32le crc:u32le payload      (crc = CRC-32/IEEE of payload)
//! payload:= klen:u32le key[klen] value[..]   (value = len - 4 - klen bytes)
//! ```
//!
//! * **Appends are atomic enough**: an entry is written with a single
//!   `write_all` and flushed + `sync_data`'d before `append` returns. A
//!   crash mid-append leaves a truncated tail, which the loader detects
//!   (length runs past EOF) and drops — every previously synced entry
//!   survives.
//! * **Corruption is quarantined, never trusted**: a CRC mismatch skips
//!   that entry (its length prefix still frames it) and keeps scanning;
//!   an implausible length ends the scan. Either way the journal is
//!   compacted — rewritten with only the verified entries via a temp file
//!   in the same directory plus an atomic rename — so damage cannot
//!   accumulate.
//! * **Duplicate keys resolve to the newest entry**, letting a writer
//!   re-append rather than rewrite in place.
//!
//! The journal stores opaque byte values; serialization of the domain type
//! (`RunResult` in `bitline-sim`) lives with the domain.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use bitline_obs::counter;

/// File magic: identifies a bitline run journal, version 1.
const MAGIC: &[u8; 8] = b"BLJRNL1\n";

/// Journal filename inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "runs.journal";

/// Upper bound on a single entry's length prefix. Entries are run results
/// (a few KiB); anything past this is treated as corruption, not data.
const MAX_ENTRY_BYTES: u32 = 64 * 1024 * 1024;

/// One verified entry loaded from a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The unit-of-work key (e.g. `benchmark@spec-hash`).
    pub key: String,
    /// Opaque serialized value.
    pub value: Vec<u8>,
}

/// What a [`Journal::open`] scan found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries that passed framing + CRC and were returned.
    pub loaded: usize,
    /// Entries dropped for CRC mismatch or bad framing.
    pub quarantined: usize,
    /// Whether the file ended in a partial entry (crash mid-append).
    pub truncated_tail: bool,
    /// Whether the file was compacted (rewritten without damage).
    pub compacted: bool,
}

/// Append-only checkpoint journal; see the module docs for the format.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    keys: HashSet<String>,
    /// Byte length of the last fully synced frame: a failed append — real
    /// or injected via the `journal.append.*` failpoints — rolls the file
    /// back here so torn bytes never desynchronise later frames.
    good_len: u64,
    /// Failpoint tag (the checkpoint directory name), so tests can arm
    /// `journal.append.write[<dir>]=...` against exactly one journal.
    tag: String,
}

impl Journal {
    /// Opens (or creates) the journal in `dir`, returning the verified
    /// entries already on disk and a report of what the scan found.
    ///
    /// If the scan detects any damage — a truncated tail or quarantined
    /// entries — the file is compacted: rewritten with only the verified
    /// entries via temp-file + rename, so the damage is gone before the
    /// first new append.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory, reading, or rewriting the
    /// journal. Corruption inside the file is never an error — it is
    /// quarantined and reported.
    pub fn open(dir: &Path) -> std::io::Result<(Journal, Vec<JournalEntry>, LoadReport)> {
        Journal::open_inner(dir, true)
    }

    /// Opens the journal in `dir`, discarding any existing entries
    /// (`--no-resume`): the file is truncated and started afresh.
    ///
    /// # Errors
    ///
    /// I/O failure creating the directory or the journal file.
    pub fn open_fresh(dir: &Path) -> std::io::Result<Journal> {
        let (journal, _, _) = Journal::open_inner(dir, false)?;
        Ok(journal)
    }

    fn open_inner(
        dir: &Path,
        resume: bool,
    ) -> std::io::Result<(Journal, Vec<JournalEntry>, LoadReport)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);

        let (entries, report) = if resume && path.exists() {
            let bytes = fs::read(&path)?;
            scan(&bytes)
        } else {
            (Vec::new(), LoadReport::default())
        };

        let needs_rewrite = !resume || report.quarantined > 0 || report.truncated_tail;
        let mut report = report;
        if needs_rewrite {
            let mut clean = Vec::with_capacity(MAGIC.len());
            clean.extend_from_slice(MAGIC);
            for e in &entries {
                clean.extend_from_slice(&frame(&e.key, &e.value));
            }
            atomic_write(&path, &clean)?;
            report.compacted = resume;
        } else if !path.exists() {
            atomic_write(&path, MAGIC)?;
        }

        counter!("exec.journal.loaded").add(u64::try_from(report.loaded).unwrap_or(u64::MAX));
        counter!("exec.journal.quarantined")
            .add(u64::try_from(report.quarantined).unwrap_or(u64::MAX));
        if report.compacted {
            counter!("exec.journal.compactions").incr();
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        let good_len = file.metadata()?.len();
        let keys = entries.iter().map(|e| e.key.clone()).collect();
        let tag = dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        Ok((Journal { file, path, keys, good_len, tag }, entries, report))
    }

    /// Whether `key` already has a journaled entry (loaded or appended).
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.keys.contains(key)
    }

    /// Number of distinct journaled keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the journal holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Path of the journal file on disk.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry and syncs it to disk before returning; a crash
    /// after `append` returns cannot lose the entry. A *failed* append —
    /// ENOSPC, a torn write, an fsync error, or the `journal.append.write`
    /// / `journal.append.fsync` failpoints — leaves no trace: the file is
    /// rolled back to the last good frame boundary so later appends stay
    /// framed correctly.
    ///
    /// # Errors
    ///
    /// I/O failure writing or syncing the journal file.
    pub fn append(&mut self, key: &str, value: &[u8]) -> std::io::Result<()> {
        let bytes = frame(key, value);
        if let Err(e) = self.append_synced(&bytes) {
            // Best-effort rollback; if even the truncate fails, the torn
            // tail is dropped by the scan on the next open instead.
            if let Err(trunc) = self.file.set_len(self.good_len) {
                eprintln!(
                    "[journal] warning: could not roll back torn append in {}: {trunc}",
                    self.path.display()
                );
            }
            return Err(e);
        }
        self.good_len += bytes.len() as u64;
        counter!("exec.journal.appends").incr();
        counter!("exec.journal.fsyncs").incr();
        self.keys.insert(key.to_owned());
        Ok(())
    }

    /// Writes one framed entry through the `journal.append.*` failpoints
    /// and syncs it. On `shortwrite(n)` only the first `n` bytes land —
    /// a torn frame, exactly what a crash mid-`write_all` leaves.
    fn append_synced(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match bitline_failpoint::write_fate_tagged("journal.append.write", &self.tag) {
            bitline_failpoint::WriteFate::Full => self.file.write_all(bytes)?,
            bitline_failpoint::WriteFate::Fail(e) => return Err(e),
            bitline_failpoint::WriteFate::Short(n) => {
                self.file.write_all(&bytes[..n.min(bytes.len())])?;
                self.file.flush()?;
                return Err(std::io::Error::from_raw_os_error(28)); // ENOSPC
            }
        }
        self.file.flush()?;
        bitline_failpoint::io_result_tagged("journal.append.fsync", &self.tag)?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Frames one `(key, value)` pair as a journal entry.
fn frame(key: &str, value: &[u8]) -> Vec<u8> {
    let klen = u32::try_from(key.len()).expect("journal key fits in u32");
    let mut payload = Vec::with_capacity(4 + key.len() + value.len());
    payload.extend_from_slice(&klen.to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload.extend_from_slice(value);

    let len = u32::try_from(payload.len()).expect("journal entry fits in u32");
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Scans raw journal bytes, returning every verified entry (newest wins on
/// duplicate keys is the *caller's* concern — entries are returned in file
/// order) and a report of the damage encountered.
fn scan(bytes: &[u8]) -> (Vec<JournalEntry>, LoadReport) {
    let mut report = LoadReport::default();
    let mut entries = Vec::new();

    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        // Wrong or missing magic: nothing in the file can be trusted.
        if !bytes.is_empty() {
            report.quarantined += 1;
        }
        report.truncated_tail = !bytes.is_empty() && bytes.len() < MAGIC.len();
        return (entries, report);
    }

    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            report.truncated_tail = true;
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice")) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4-byte slice"));
        if len < 4 || len > MAX_ENTRY_BYTES as usize {
            // Implausible frame: cannot re-synchronise, stop scanning.
            report.quarantined += 1;
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            report.truncated_tail = true;
            break;
        };
        pos += 8 + len;
        if crc32(payload) != crc {
            report.quarantined += 1;
            continue;
        }
        let klen = u32::from_le_bytes(payload[..4].try_into().expect("4-byte slice")) as usize;
        let Some(key_bytes) = payload.get(4..4 + klen) else {
            report.quarantined += 1;
            continue;
        };
        let Ok(key) = std::str::from_utf8(key_bytes) else {
            report.quarantined += 1;
            continue;
        };
        entries.push(JournalEntry { key: key.to_owned(), value: payload[4 + klen..].to_vec() });
        report.loaded += 1;
    }
    (entries, report)
}

/// Writes `bytes` to `path` atomically: temp file in the destination
/// directory, flush + sync, then rename over the target. Readers see
/// either the old contents or the new, never a truncated mix.
///
/// # Errors
///
/// I/O failure creating, writing, syncing, or renaming the temp file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("out");
    let tag = dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let outcome = (|| {
        let mut file = File::create(&tmp)?;
        // The compaction tmp-write seam: a torn tmp image is exactly what
        // a crash mid-compaction leaves. The error path below removes the
        // tmp (a *failed* write cleans up; only a process death leaves
        // residue for the next open to ignore).
        match bitline_failpoint::write_fate_tagged("journal.atomic_write", &tag) {
            bitline_failpoint::WriteFate::Full => file.write_all(bytes)?,
            bitline_failpoint::WriteFate::Fail(e) => return Err(e),
            bitline_failpoint::WriteFate::Short(n) => {
                file.write_all(&bytes[..n.min(bytes.len())])?;
                file.flush()?;
                return Err(std::io::Error::from_raw_os_error(28)); // ENOSPC
            }
        }
        file.flush()?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, path)
    })();
    if outcome.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    outcome
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Reads a journal file's verified entries without opening it for append.
///
/// # Errors
///
/// I/O failure reading the file; a missing file yields zero entries.
pub fn read_entries(path: &Path) -> std::io::Result<(Vec<JournalEntry>, LoadReport)> {
    if !path.exists() {
        return Ok((Vec::new(), LoadReport::default()));
    }
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(scan(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bitline-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_reopen_roundtrips() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut j, entries, report) = Journal::open(&dir).expect("open");
            assert!(entries.is_empty());
            assert_eq!(report, LoadReport::default());
            j.append("a", b"alpha").expect("append");
            j.append("b", &[0, 1, 2, 255]).expect("append");
            assert!(j.contains("a") && j.contains("b"));
            assert_eq!(j.len(), 2);
        }
        let (j, entries, report) = Journal::open(&dir).expect("reopen");
        assert_eq!(report.loaded, 2);
        assert_eq!(report.quarantined, 0);
        assert!(!report.compacted);
        assert_eq!(
            entries,
            vec![
                JournalEntry { key: "a".into(), value: b"alpha".to_vec() },
                JournalEntry { key: "b".into(), value: vec![0, 1, 2, 255] },
            ]
        );
        assert!(j.contains("b"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_fresh_discards_existing_entries() {
        let dir = tmp_dir("fresh");
        {
            let (mut j, _, _) = Journal::open(&dir).expect("open");
            j.append("a", b"alpha").expect("append");
        }
        let j = Journal::open_fresh(&dir).expect("open fresh");
        assert!(j.is_empty());
        let (_, entries, _) = Journal::open(&dir).expect("reopen");
        assert!(entries.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_and_compacted() {
        let dir = tmp_dir("trunc");
        {
            let (mut j, _, _) = Journal::open(&dir).expect("open");
            j.append("whole", b"kept").expect("append");
            j.append("partial", b"lost-on-crash").expect("append");
        }
        let path = dir.join(JOURNAL_FILE);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");

        let (_, entries, report) = Journal::open(&dir).expect("reopen");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, "whole");
        assert!(report.truncated_tail);
        assert!(report.compacted);

        // After compaction the file is clean again.
        let (_, entries, report) = Journal::open(&dir).expect("re-reopen");
        assert_eq!(entries.len(), 1);
        assert!(!report.truncated_tail && !report.compacted);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bit_is_quarantined() {
        let dir = tmp_dir("crc");
        {
            let (mut j, _, _) = Journal::open(&dir).expect("open");
            j.append("good", b"first").expect("append");
            j.append("bad", b"second").expect("append");
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = fs::read(&path).expect("read");
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // flip a bit in the last entry's value
        fs::write(&path, &bytes).expect("write");

        let (j, entries, report) = Journal::open(&dir).expect("reopen");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, "good");
        assert_eq!(report.quarantined, 1);
        assert!(report.compacted);
        assert!(!j.contains("bad"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = tmp_dir("atomic");
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("out.txt");
        atomic_write(&path, b"one").expect("write");
        atomic_write(&path, b"two").expect("rewrite");
        assert_eq!(fs::read(&path).expect("read"), b"two");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
