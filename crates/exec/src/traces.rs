//! Shared, lazily-materialised synthetic traces.
//!
//! `WorkloadSpec::build(seed)` is deterministic, so every run of the same
//! `(benchmark, seed)` pair consumes the same instruction stream — yet the
//! serial drivers used to regenerate it for every configuration of every
//! sweep. A [`TraceStore`] generates each stream once, on demand, into
//! immutable columnar [`Segment`]s (`bitline_trace::columnar`); concurrent
//! runs replay it through [`TraceCursor`]s that share segments by
//! reference count — no copying, no lock on the hot path, and roughly a
//! quarter of the memory an `Instr` array would hold.
//!
//! Generation batches a whole segment into a local builder before a
//! single locked append, so concurrent readers stall for one `Vec` push,
//! not one push per instruction. Laziness subsumes the instruction-count
//! dimension of the key: a run that consumes more instructions simply
//! extends the shared stream segment by segment, and every other reader
//! sees the identical prefix it would have generated itself.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use bitline_trace::columnar::{Segment, SegmentBuilder, SegmentCursor};
use bitline_trace::{Instr, TraceSource};
use bitline_workloads::{suite, SyntheticWorkload};

/// Instructions per columnar segment: one generator+encode batch, and the
/// sharing granule between cursors.
const SEG_LEN: usize = 4096;

/// Generator plus encoder state; the encoder's cross-segment pc-delta
/// chain must advance in lockstep with the generator, so they share a
/// mutex.
#[derive(Debug)]
struct Producer {
    generator: SyntheticWorkload,
    builder: SegmentBuilder,
}

/// One benchmark's shared stream for one seed.
#[derive(Debug)]
struct SharedTrace {
    name: String,
    /// Locked only while generating and encoding the next segment.
    producer: Mutex<Producer>,
    /// Everything materialised so far, in stream order. Each segment is
    /// immutable and shared with cursors by refcount.
    segments: RwLock<Vec<Arc<Segment>>>,
}

impl SharedTrace {
    /// The segment at `idx`, materialising the stream up to it if needed.
    fn segment(&self, idx: usize) -> Arc<Segment> {
        loop {
            {
                let segments =
                    self.segments.read().unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Some(seg) = segments.get(idx) {
                    return Arc::clone(seg);
                }
            }
            // Lock order is always producer → segments, and appends happen
            // in stream order under the producer lock, so the segment list
            // extends deterministically no matter which reader gets here
            // first.
            let mut producer =
                self.producer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let have =
                self.segments.read().unwrap_or_else(std::sync::PoisonError::into_inner).len();
            // Another thread may have produced it while we waited.
            for _ in have..=idx {
                // Materialisation seam: delay/stall here model a slow
                // producer with readers queued on the segment lock.
                bitline_failpoint::failpoint!("traces.materialise");
                debug_assert!(producer.builder.is_empty());
                for _ in 0..SEG_LEN {
                    let instr = producer.generator.next_instr();
                    producer.builder.push(&instr);
                }
                let seg = Arc::new(producer.builder.finish_segment());
                bitline_obs::counter!("exec.traces.materialised").add(SEG_LEN as u64);
                // Readers only ever stall for this one push.
                self.segments.write().unwrap_or_else(std::sync::PoisonError::into_inner).push(seg);
            }
        }
    }

    fn len(&self) -> u64 {
        let segments = self.segments.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        segments.iter().map(|s| s.len() as u64).sum()
    }

    fn heap_bytes(&self) -> u64 {
        let segments = self.segments.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        segments.iter().map(|s| s.heap_bytes() as u64).sum()
    }
}

/// Size and coverage of a [`TraceStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStoreStats {
    /// Distinct `(benchmark, seed)` streams materialised.
    pub traces: usize,
    /// Total instructions held across all streams.
    pub instructions: u64,
    /// Heap bytes held by the columnar segments (shared across cursors).
    pub bytes: u64,
}

impl std::fmt::Display for TraceStoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shared traces, {} instrs materialised ({} KiB columnar)",
            self.traces,
            self.instructions,
            self.bytes / 1024
        )
    }
}

/// A process-wide store of shared synthetic traces.
#[derive(Debug, Default)]
pub struct TraceStore {
    traces: Mutex<HashMap<(String, u64), Arc<SharedTrace>>>,
}

impl TraceStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    /// A cursor over the shared stream of `benchmark` at `seed`, or `None`
    /// when the benchmark is not in the suite.
    #[must_use]
    pub fn cursor(&self, benchmark: &str, seed: u64) -> Option<TraceCursor> {
        let mut traces = self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let trace = match traces.get(&(benchmark.to_owned(), seed)) {
            Some(t) => Arc::clone(t),
            None => {
                let spec = suite::by_name(benchmark)?;
                let t = Arc::new(SharedTrace {
                    name: benchmark.to_owned(),
                    producer: Mutex::new(Producer {
                        generator: spec.build(seed),
                        builder: SegmentBuilder::new(),
                    }),
                    segments: RwLock::new(Vec::new()),
                });
                traces.insert((benchmark.to_owned(), seed), Arc::clone(&t));
                bitline_obs::counter!("exec.traces.streams").incr();
                t
            }
        };
        Some(TraceCursor { trace, seg: None, seg_idx: 0, cur: SegmentCursor::new(), prev_pc: 0 })
    }

    /// Stream count, total materialised instructions, and columnar bytes.
    #[must_use]
    pub fn stats(&self) -> TraceStoreStats {
        let traces = self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        TraceStoreStats {
            traces: traces.len(),
            instructions: traces.values().map(|t| t.len()).sum(),
            bytes: traces.values().map(|t| t.heap_bytes()).sum(),
        }
    }

    /// Drops every stream (for cold-vs-warm comparisons in tests).
    pub fn clear(&self) {
        self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

/// A per-run replay position into a [`SharedTrace`].
///
/// Implements [`TraceSource`] by decoding the current shared segment in
/// place: the hot `next_instr` path touches only refcounted immutable
/// columns — no locking, no copies. The decode state (`prev_pc` and the
/// side-column positions) advances strictly forward, exactly how the
/// builder encoded the stream.
#[derive(Debug)]
pub struct TraceCursor {
    trace: Arc<SharedTrace>,
    /// Current segment, shared by refcount (`None` before the first read).
    seg: Option<Arc<Segment>>,
    /// Index of `seg` in the stream.
    seg_idx: usize,
    cur: SegmentCursor,
    prev_pc: u64,
}

impl TraceSource for TraceCursor {
    fn next_instr(&mut self) -> Instr {
        loop {
            if let Some(seg) = &self.seg {
                if let Some(instr) = seg.decode(&mut self.cur, &mut self.prev_pc) {
                    return instr;
                }
                self.seg_idx += 1;
            }
            self.seg = Some(self.trace.segment(self.seg_idx));
            self.cur = SegmentCursor::new();
        }
    }

    fn name(&self) -> &str {
        &self.trace.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool;

    #[test]
    fn cursor_replays_the_generator_stream_exactly() {
        let store = TraceStore::new();
        let mut cursor = store.cursor("mesa", 42).expect("mesa is in the suite");
        let mut direct = suite::by_name("mesa").unwrap().build(42);
        for i in 0..(2 * SEG_LEN + 17) {
            assert_eq!(cursor.next_instr(), direct.next_instr(), "instr {i}");
        }
        assert_eq!(cursor.name(), "mesa");
    }

    #[test]
    fn unknown_benchmark_has_no_cursor() {
        assert!(TraceStore::new().cursor("linpack", 42).is_none());
    }

    #[test]
    fn seeds_get_distinct_streams() {
        let store = TraceStore::new();
        let a: Vec<Instr> = std::iter::repeat_with({
            let mut c = store.cursor("gcc", 1).unwrap();
            move || c.next_instr()
        })
        .take(200)
        .collect();
        let b: Vec<Instr> = std::iter::repeat_with({
            let mut c = store.cursor("gcc", 2).unwrap();
            move || c.next_instr()
        })
        .take(200)
        .collect();
        assert_ne!(a, b);
        assert_eq!(store.stats().traces, 2);
    }

    #[test]
    fn concurrent_cursors_see_the_identical_prefix() {
        let store = TraceStore::new();
        let reference: Vec<Instr> = {
            let mut direct = suite::by_name("health").unwrap().build(7);
            std::iter::repeat_with(|| direct.next_instr()).take(SEG_LEN + 100).collect()
        };
        let streams = pool::with_jobs(8, || {
            pool::run_indexed(8, |i| {
                let mut cursor = store.cursor("health", 7).expect("health is in the suite");
                // Readers consume different lengths to exercise extension
                // racing: every prefix must still match the generator.
                let n = SEG_LEN / 2 + i * 64;
                std::iter::repeat_with(|| cursor.next_instr()).take(n).collect::<Vec<_>>()
            })
        });
        for (i, stream) in streams.iter().enumerate() {
            assert_eq!(stream.as_slice(), &reference[..stream.len()], "reader {i}");
        }
        let stats = store.stats();
        assert_eq!(stats.traces, 1);
        assert!(stats.instructions >= (SEG_LEN / 2) as u64);
    }

    #[test]
    fn columnar_segments_undercut_the_instr_array_4x() {
        let store = TraceStore::new();
        let mut cursor = store.cursor("gcc", 3).unwrap();
        for _ in 0..(3 * SEG_LEN) {
            let _ = cursor.next_instr();
        }
        let stats = store.stats();
        let aos = stats.instructions * std::mem::size_of::<Instr>() as u64;
        assert!(
            stats.bytes * 4 <= aos,
            "columnar {} B vs Instr array {aos} B — expected >= 4x reduction",
            stats.bytes
        );
    }

    #[test]
    fn cursors_share_segments_by_refcount() {
        let store = TraceStore::new();
        let mut a = store.cursor("mesa", 1).unwrap();
        let mut b = store.cursor("mesa", 1).unwrap();
        for _ in 0..SEG_LEN {
            let _ = a.next_instr();
            let _ = b.next_instr();
        }
        let (sa, sb) = (a.seg.as_ref().unwrap(), b.seg.as_ref().unwrap());
        assert!(Arc::ptr_eq(sa, sb), "both cursors decode the same shared segment");
        // One segment materialised once, not per cursor.
        assert_eq!(store.stats().instructions, SEG_LEN as u64);
    }
}
