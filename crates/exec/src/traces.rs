//! Shared, lazily-materialised synthetic traces.
//!
//! `WorkloadSpec::build(seed)` is deterministic, so every run of the same
//! `(benchmark, seed)` pair consumes the same instruction stream — yet the
//! serial drivers used to regenerate it for every configuration of every
//! sweep. A [`TraceStore`] generates each stream once, on demand, into a
//! shared append-only buffer; concurrent runs replay it through
//! [`TraceCursor`]s that copy chunks out under a read lock.
//!
//! Laziness subsumes the instruction-count dimension of the key: a run
//! that consumes more instructions simply extends the shared prefix, and
//! every other reader sees the identical stream it would have generated
//! itself.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use bitline_trace::{Instr, TraceSource};
use bitline_workloads::{suite, SyntheticWorkload};

/// Instructions copied per cursor refill: one brief read-lock per `CHUNK`
/// instructions instead of one per instruction.
const CHUNK: usize = 4096;

/// One benchmark's shared stream for one seed.
#[derive(Debug)]
struct SharedTrace {
    name: String,
    /// The generator; locked only to extend `buf`.
    generator: Mutex<SyntheticWorkload>,
    /// Everything generated so far, in generator order.
    buf: RwLock<Vec<Instr>>,
}

impl SharedTrace {
    /// Copies up to `CHUNK` instructions starting at global index `start`
    /// into `out`, generating more of the stream if needed.
    fn fill(&self, start: usize, out: &mut Vec<Instr>) {
        {
            let buf = self.buf.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            if start < buf.len() {
                out.extend_from_slice(&buf[start..buf.len().min(start + CHUNK)]);
                return;
            }
        }
        // Lock order is always generator → buffer, and appends happen with
        // both held, so the buffer extends strictly in generator order no
        // matter which reader gets here first.
        let mut generator =
            self.generator.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut buf = self.buf.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = buf.len();
        while buf.len() < start + CHUNK {
            buf.push(generator.next_instr());
        }
        bitline_obs::counter!("exec.traces.materialised")
            .add(u64::try_from(buf.len() - before).unwrap_or(u64::MAX));
        out.extend_from_slice(&buf[start..start + CHUNK]);
    }

    fn len(&self) -> usize {
        self.buf.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }
}

/// Size and coverage of a [`TraceStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStoreStats {
    /// Distinct `(benchmark, seed)` streams materialised.
    pub traces: usize,
    /// Total instructions held across all streams.
    pub instructions: u64,
}

impl std::fmt::Display for TraceStoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} shared traces, {} instrs materialised", self.traces, self.instructions)
    }
}

/// A process-wide store of shared synthetic traces.
#[derive(Debug, Default)]
pub struct TraceStore {
    traces: Mutex<HashMap<(String, u64), Arc<SharedTrace>>>,
}

impl TraceStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    /// A cursor over the shared stream of `benchmark` at `seed`, or `None`
    /// when the benchmark is not in the suite.
    #[must_use]
    pub fn cursor(&self, benchmark: &str, seed: u64) -> Option<TraceCursor> {
        let mut traces = self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let trace = match traces.get(&(benchmark.to_owned(), seed)) {
            Some(t) => Arc::clone(t),
            None => {
                let spec = suite::by_name(benchmark)?;
                let t = Arc::new(SharedTrace {
                    name: benchmark.to_owned(),
                    generator: Mutex::new(spec.build(seed)),
                    buf: RwLock::new(Vec::new()),
                });
                traces.insert((benchmark.to_owned(), seed), Arc::clone(&t));
                bitline_obs::counter!("exec.traces.streams").incr();
                t
            }
        };
        Some(TraceCursor { trace, chunk: Vec::new(), chunk_start: 0, pos: 0 })
    }

    /// Stream count and total materialised instructions.
    #[must_use]
    pub fn stats(&self) -> TraceStoreStats {
        let traces = self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        TraceStoreStats {
            traces: traces.len(),
            instructions: traces.values().map(|t| t.len() as u64).sum(),
        }
    }

    /// Drops every stream (for cold-vs-warm comparisons in tests).
    pub fn clear(&self) {
        self.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

/// A per-run replay position into a [`SharedTrace`].
///
/// Implements [`TraceSource`] by copying chunks out of the shared buffer,
/// so the hot `next_instr` path is an array read with no locking.
#[derive(Debug)]
pub struct TraceCursor {
    trace: Arc<SharedTrace>,
    chunk: Vec<Instr>,
    /// Global index of `chunk[0]`.
    chunk_start: usize,
    /// Global index of the next instruction to deliver.
    pos: usize,
}

impl TraceSource for TraceCursor {
    fn next_instr(&mut self) -> Instr {
        if self.pos - self.chunk_start >= self.chunk.len() {
            self.chunk_start = self.pos;
            self.chunk.clear();
            self.trace.fill(self.pos, &mut self.chunk);
        }
        let instr = self.chunk[self.pos - self.chunk_start];
        self.pos += 1;
        instr
    }

    fn name(&self) -> &str {
        &self.trace.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool;

    #[test]
    fn cursor_replays_the_generator_stream_exactly() {
        let store = TraceStore::new();
        let mut cursor = store.cursor("mesa", 42).expect("mesa is in the suite");
        let mut direct = suite::by_name("mesa").unwrap().build(42);
        for i in 0..(2 * CHUNK + 17) {
            assert_eq!(cursor.next_instr(), direct.next_instr(), "instr {i}");
        }
        assert_eq!(cursor.name(), "mesa");
    }

    #[test]
    fn unknown_benchmark_has_no_cursor() {
        assert!(TraceStore::new().cursor("linpack", 42).is_none());
    }

    #[test]
    fn seeds_get_distinct_streams() {
        let store = TraceStore::new();
        let a: Vec<Instr> = std::iter::repeat_with({
            let mut c = store.cursor("gcc", 1).unwrap();
            move || c.next_instr()
        })
        .take(200)
        .collect();
        let b: Vec<Instr> = std::iter::repeat_with({
            let mut c = store.cursor("gcc", 2).unwrap();
            move || c.next_instr()
        })
        .take(200)
        .collect();
        assert_ne!(a, b);
        assert_eq!(store.stats().traces, 2);
    }

    #[test]
    fn concurrent_cursors_see_the_identical_prefix() {
        let store = TraceStore::new();
        let reference: Vec<Instr> = {
            let mut direct = suite::by_name("health").unwrap().build(7);
            std::iter::repeat_with(|| direct.next_instr()).take(CHUNK + 100).collect()
        };
        let streams = pool::with_jobs(8, || {
            pool::run_indexed(8, |i| {
                let mut cursor = store.cursor("health", 7).expect("health is in the suite");
                // Readers consume different lengths to exercise extension
                // racing: every prefix must still match the generator.
                let n = CHUNK / 2 + i * 64;
                std::iter::repeat_with(|| cursor.next_instr()).take(n).collect::<Vec<_>>()
            })
        });
        for (i, stream) in streams.iter().enumerate() {
            assert_eq!(stream.as_slice(), &reference[..stream.len()], "reader {i}");
        }
        let stats = store.stats();
        assert_eq!(stats.traces, 1);
        assert!(stats.instructions >= (CHUNK / 2) as u64);
    }
}
