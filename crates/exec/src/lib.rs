//! Execution layer for suite-wide experiments.
//!
//! Every figure/table driver walks the sixteen-benchmark suite through the
//! same three steps: generate a synthetic trace, simulate it under some
//! system configuration, and price the result. That work is
//! embarrassingly parallel across benchmarks and heavily redundant across
//! configurations (every sweep re-runs the static baseline, every driver
//! regenerates the same trace). This crate supplies the three primitives
//! the drivers are rebuilt on:
//!
//! * [`pool`] — a scoped work pool over [`std::thread::scope`] with a
//!   `BITLINE_JOBS` env knob (default: available parallelism). Results are
//!   returned in submission order, so callers are deterministic regardless
//!   of the job count.
//! * [`MemoCache`] — a concurrent memoization table with per-key
//!   once-only computation and hit/miss counters. `bitline-sim` keys it by
//!   `(benchmark, SystemSpec)` so baselines and repeated sweep points are
//!   simulated once per process.
//! * [`TraceStore`] — a shared, lazily-materialised store of synthetic
//!   workload traces keyed by `(benchmark, seed)`; concurrent runs replay
//!   the same generated prefix through cheap [`TraceCursor`]s instead of
//!   regenerating it.
//!
//! Two supervision primitives ride on top: [`CancelToken`]/[`Deadline`]
//! give every unit of work a pollable wall-clock budget
//! ([`pool::run_indexed_supervised`] arms one per unit), and [`journal`]
//! is a crash-safe append-only checkpoint journal so a killed sweep can
//! resume from its completed prefix instead of recomputing it.
//!
//! The determinism argument is simple: each unit of work is a pure
//! function of its inputs (simulations are seeded and self-contained), the
//! pool reorders only *scheduling*, never results, and both caches hand
//! every reader the exact value a cold computation would have produced.
//!
//! # Examples
//!
//! ```
//! use bitline_exec::{pool, MemoCache};
//!
//! let squares = pool::run_indexed(4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//!
//! let cache: MemoCache<u32, u32> = MemoCache::new();
//! assert_eq!(cache.get_or_insert_with(7, || 49), 49);
//! assert_eq!(cache.get_or_insert_with(7, || unreachable!()), 49);
//! assert_eq!(cache.stats().hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod journal;
mod memo;
pub mod pool;
mod supervise;
mod traces;

pub use journal::{atomic_write, Journal, JournalEntry, LoadReport};
pub use memo::{CacheStats, MemoCache};
pub use supervise::{CancelToken, Deadline};
pub use traces::{TraceCursor, TraceStore, TraceStoreStats};
