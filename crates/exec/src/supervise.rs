//! Deadlines and cooperative cancellation for units of work.
//!
//! A [`CancelToken`] is the handshake between a supervisor (the work pool,
//! a CLI deadline) and the unit of work it supervises: the supervisor
//! creates the token with an optional wall-clock budget, the worker polls
//! [`CancelToken::cancelled`] at natural checkpoint boundaries (the
//! simulator polls every few thousand committed instructions) and bails
//! out *cooperatively* when the budget is exhausted or an explicit
//! [`CancelToken::cancel`] arrived. Nothing is ever killed mid-update, so
//! a cancelled unit leaves no torn state behind — it simply returns a
//! timeout error instead of a result.
//!
//! Polling is cheap: one relaxed atomic load, plus one `Instant::now()`
//! when a deadline is armed. Tokens are `Clone` (clones share the cancel
//! flag) and `Send + Sync`, so a supervisor thread can cancel a unit
//! running on a pool worker.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock budget anchored at creation time.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    /// A deadline that never expires.
    #[must_use]
    pub fn unbounded() -> Deadline {
        Deadline { started: Instant::now(), budget: None }
    }

    /// Expires `budget` after now.
    #[must_use]
    pub fn within(budget: Duration) -> Deadline {
        Deadline { started: Instant::now(), budget: Some(budget) }
    }

    /// The budget this deadline was created with (`None` = unbounded).
    #[must_use]
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Wall-clock time since the deadline was armed.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether the budget is exhausted (never true when unbounded).
    #[must_use]
    pub fn expired(&self) -> bool {
        self.budget.is_some_and(|b| self.started.elapsed() >= b)
    }
}

/// A cooperative cancellation token: an explicit cancel flag plus an
/// optional [`Deadline`].
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use bitline_exec::CancelToken;
///
/// let unbounded = CancelToken::unbounded();
/// assert!(!unbounded.cancelled());
///
/// let expired = CancelToken::with_budget(Duration::ZERO);
/// assert!(expired.cancelled(), "zero budget expires immediately");
///
/// let flagged = CancelToken::unbounded();
/// flagged.cancel();
/// assert!(flagged.cancelled());
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Deadline,
}

impl CancelToken {
    /// A token that only cancels on an explicit [`CancelToken::cancel`].
    #[must_use]
    pub fn unbounded() -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Deadline::unbounded() }
    }

    /// A token that expires `budget` after creation.
    #[must_use]
    pub fn with_budget(budget: Duration) -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Deadline::within(budget) }
    }

    /// [`CancelToken::with_budget`] when `budget` is set, else
    /// [`CancelToken::unbounded`].
    #[must_use]
    pub fn for_budget(budget: Option<Duration>) -> CancelToken {
        match budget {
            Some(b) => CancelToken::with_budget(b),
            None => CancelToken::unbounded(),
        }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the unit should stop: explicitly cancelled or past its
    /// deadline.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.expired()
    }

    /// The wall-clock budget this token was created with.
    #[must_use]
    pub fn budget(&self) -> Option<Duration> {
        self.deadline.budget()
    }

    /// Wall-clock time since the token was created.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.deadline.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let t = CancelToken::unbounded();
        assert!(!t.cancelled());
        assert_eq!(t.budget(), None);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let t = CancelToken::with_budget(Duration::ZERO);
        assert!(t.cancelled());
        assert_eq!(t.budget(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired_yet() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!t.cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::unbounded();
        let clone = t.clone();
        t.cancel();
        assert!(clone.cancelled());
    }

    #[test]
    fn for_budget_maps_none_to_unbounded() {
        assert_eq!(CancelToken::for_budget(None).budget(), None);
        assert_eq!(
            CancelToken::for_budget(Some(Duration::from_millis(5))).budget(),
            Some(Duration::from_millis(5))
        );
    }
}
