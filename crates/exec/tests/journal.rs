//! Crash-safety properties of the checkpoint journal: arbitrary entry
//! sets survive a write/reopen cycle, a torn tail cut at *every* byte
//! offset never loses a fully synced entry, a flipped bit quarantines
//! exactly the damaged entry, and armed `journal.*` failpoints tear real
//! appends without ever desynchronising the frames that follow.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bitline_exec::journal::{atomic_write, crc32, JOURNAL_FILE};
use bitline_exec::Journal;
use bitline_failpoint::io::FallibleWriter;
use proptest::prelude::*;

/// A scratch directory unique to this process and call site.
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bitline-journal-it-{}-{label}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_journal(dir: &std::path::Path, entries: &[(String, Vec<u8>)]) {
    let mut journal = Journal::open_fresh(dir).expect("fresh journal");
    for (key, value) in entries {
        journal.append(key, value).expect("append");
    }
}

/// Journal entries: printable unique-ish keys plus arbitrary payload bytes.
fn entry_sets() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    prop::collection::vec((any::<u64>(), prop::collection::vec(any::<u8>(), 0..96)), 1..12)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (tag, value))| (format!("bench{i}@{tag:016x}"), value))
                .collect()
        })
}

proptest! {
    /// Whatever was appended comes back verbatim, in order, with nothing
    /// quarantined.
    fn roundtrip_preserves_every_entry(entries in entry_sets()) {
        let dir = scratch("roundtrip");
        write_journal(&dir, &entries);

        let (_, loaded, report) = Journal::open(&dir).expect("reopen");
        prop_assert_eq!(loaded.len(), entries.len());
        prop_assert_eq!(report.loaded, entries.len());
        prop_assert_eq!(report.quarantined, 0);
        prop_assert!(!report.truncated_tail);
        for (got, (key, value)) in loaded.iter().zip(&entries) {
            prop_assert_eq!(&got.key, key);
            prop_assert_eq!(&got.value, value);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Simulates a crash mid-append: the journal cut at **every** byte offset
/// still yields each entry whose bytes were fully flushed, and never
/// invents data.
#[test]
fn truncated_tail_recovers_every_complete_entry() {
    let dir = scratch("truncate");
    let entries: Vec<(String, Vec<u8>)> =
        (0..4).map(|i| (format!("bench{i}@{i:016x}"), vec![i as u8; 5 + i * 7])).collect();
    write_journal(&dir, &entries);
    let full = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal bytes");

    // Byte offsets where each entry's frame ends (magic is 8 bytes).
    let mut ends = vec![8usize];
    for (key, value) in &entries {
        ends.push(ends.last().unwrap() + 8 + 4 + key.len() + value.len());
    }
    assert_eq!(*ends.last().unwrap(), full.len(), "frame arithmetic matches the file");

    for cut in 0..=full.len() {
        let case = scratch("truncate-case");
        std::fs::write(case.join(JOURNAL_FILE), &full[..cut]).expect("write prefix");
        let (_, loaded, report) = Journal::open(&case).expect("open truncated");

        // Every entry fully contained in the prefix must survive.
        let complete = ends.iter().filter(|&&e| e <= cut.max(8)).count().saturating_sub(1);
        assert_eq!(loaded.len(), complete, "cut at byte {cut}/{}", full.len());
        for (got, (key, value)) in loaded.iter().zip(&entries) {
            assert_eq!(&got.key, key, "cut at byte {cut}");
            assert_eq!(&got.value, value, "cut at byte {cut}");
        }
        // A clean cut on an entry boundary is not a torn tail; anything
        // else — including a partial magic — is. An empty file is pristine.
        let on_boundary = ends.contains(&cut) || cut == 0;
        assert_eq!(report.truncated_tail, !on_boundary, "cut at byte {cut}");

        // The damaged file was compacted: reopening is clean and appends
        // still work.
        let (mut journal, reloaded, clean) = Journal::open(&case).expect("reopen compacted");
        assert_eq!(reloaded.len(), complete);
        assert!(!clean.truncated_tail, "compaction must leave a clean file (cut {cut})");
        journal.append("after@0000000000000000", b"tail").expect("append after damage");
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Frames one entry exactly as the journal does:
/// `[len:u32le][crc32:u32le][klen:u32le|key|value]`.
fn chaos_frame(key: &str, value: &[u8]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&u32::try_from(key.len()).expect("key fits").to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload.extend_from_slice(value);
    let mut out = Vec::new();
    out.extend_from_slice(&u32::try_from(payload.len()).expect("entry fits").to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Chaos leg: a writer that dies of `ENOSPC` mid-frame — at *every*
/// possible byte budget, under pathologically short writes — leaves a
/// journal that `open` recovers without ever inventing, duplicating, or
/// quarantining a fully flushed entry.
#[test]
fn enospc_mid_frame_loses_only_the_torn_tail() {
    let entries: Vec<(String, Vec<u8>)> =
        (0..3).map(|i| (format!("bench{i}@{i:016x}"), vec![0xA5 ^ i as u8; 9 + i * 11])).collect();

    // The full image the journal would have written: magic then frames.
    let mut full: Vec<u8> = b"BLJRNL1\n".to_vec();
    let mut ends = vec![full.len()];
    for (key, value) in &entries {
        full.extend_from_slice(&chaos_frame(key, value));
        ends.push(full.len());
    }

    for max_chunk in [1usize, 3, 64, usize::MAX] {
        for budget in 0..=full.len() {
            // Write through the failing writer until it reports ENOSPC.
            let mut w = FallibleWriter::new(budget, max_chunk);
            let outcome = w.write_all(&full);
            assert_eq!(outcome.is_err(), budget < full.len(), "budget {budget}");
            if let Err(e) = outcome {
                assert_eq!(e.raw_os_error(), Some(28), "the chaos error is ENOSPC");
            }
            assert_eq!(w.out, &full[..budget], "short writes must still land in order");

            let dir = scratch("enospc");
            std::fs::write(dir.join(JOURNAL_FILE), &w.out).expect("write torn journal");
            let (_, loaded, report) = Journal::open(&dir).expect("open survives ENOSPC damage");

            // Every frame fully inside the budget survives; nothing else.
            let complete = ends.iter().filter(|&&e| e <= budget.max(8)).count() - 1;
            assert_eq!(loaded.len(), complete, "budget {budget} chunk {max_chunk}");
            assert_eq!(report.loaded, complete);
            for (got, (key, value)) in loaded.iter().zip(&entries) {
                assert_eq!(&got.key, key, "budget {budget}");
                assert_eq!(&got.value, value, "budget {budget}");
            }
            // A tear is truncation, not corruption: the quarantine counter
            // stays untouched except for the no-magic degenerate case.
            let expected_quarantined = usize::from(budget > 0 && budget < 8);
            assert_eq!(report.quarantined, expected_quarantined, "budget {budget}");
            let on_boundary = budget == 0 || ends.contains(&budget);
            assert_eq!(report.truncated_tail, !on_boundary, "budget {budget}");

            // Recovery is durable: the reopened journal is clean and
            // writable once space is back.
            let (mut journal, reloaded, clean) = Journal::open(&dir).expect("reopen");
            assert_eq!(reloaded.len(), complete);
            assert_eq!(clean.quarantined, 0, "compaction scrubbed the tear");
            assert!(!clean.truncated_tail);
            journal.append("after@enospc", b"recovered").expect("append after recovery");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Compaction racing a crash: `open` rewrites a damaged journal via
/// temp-file-then-rename, so a SIGKILL landing mid-compaction leaves a
/// partial temp image next to an untouched original. Simulate that crash
/// at **every** byte budget of the compacted image (written through the
/// same short-write `FallibleWriter` the ENOSPC leg uses) and reopen: the
/// original must remain authoritative with zero lost frames, the partial
/// temp must be ignored and cleaned up, and the journal must stay
/// appendable.
#[test]
fn interrupted_compaction_leaves_the_original_authoritative() {
    let entries: Vec<(String, Vec<u8>)> =
        (0..4).map(|i| (format!("bench{i}@{i:016x}"), vec![0xC3 ^ i as u8; 7 + i * 5])).collect();

    // The damaged on-disk journal: all frames, then a torn half-frame —
    // enough damage that every reopen triggers a compaction rewrite.
    let mut damaged: Vec<u8> = b"BLJRNL1\n".to_vec();
    for (key, value) in &entries {
        damaged.extend_from_slice(&chaos_frame(key, value));
    }
    let torn = chaos_frame("torn@ffffffffffffffff", b"never fully flushed");
    damaged.extend_from_slice(&torn[..torn.len() / 2]);

    // The clean image a completed compaction would have produced.
    let mut compacted: Vec<u8> = b"BLJRNL1\n".to_vec();
    for (key, value) in &entries {
        compacted.extend_from_slice(&chaos_frame(key, value));
    }

    // `atomic_write` stages into `.{name}.tmp.{pid}` in the same directory;
    // a crash before the rename leaves exactly a prefix of the image there.
    let tmp_name = format!(".{JOURNAL_FILE}.tmp.{}", std::process::id());
    for budget in 0..=compacted.len() {
        let dir = scratch("compact-race");
        std::fs::write(dir.join(JOURNAL_FILE), &damaged).expect("write damaged journal");
        let mut w = FallibleWriter::new(budget, 7);
        let _ = w.write_all(&compacted);
        std::fs::write(dir.join(&tmp_name), &w.out).expect("write partial compaction");

        let (mut journal, loaded, report) =
            Journal::open(&dir).expect("open after interrupted compaction");
        assert_eq!(loaded.len(), entries.len(), "budget {budget}: zero lost frames");
        for (got, (key, value)) in loaded.iter().zip(&entries) {
            assert_eq!(&got.key, key, "budget {budget}");
            assert_eq!(&got.value, value, "budget {budget}");
        }
        assert!(report.truncated_tail, "the torn tail is what made open() recompact");

        // The recovery compaction completed this time: only the clean
        // journal remains, with no stale temp beside it.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![JOURNAL_FILE.to_owned()], "budget {budget}: no temp residue");
        assert_eq!(std::fs::read(dir.join(JOURNAL_FILE)).expect("clean bytes"), compacted);

        journal.append("after@compaction", b"still writable").expect("append after recovery");
        let (_, reloaded, clean) = Journal::open(&dir).expect("reopen clean");
        assert_eq!(reloaded.len(), entries.len() + 1);
        assert_eq!(clean.quarantined, 0);
        assert!(!clean.truncated_tail);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Tag helper: journal failpoints are tagged with the checkpoint
/// directory *name*, so a test can tear exactly its own journal while
/// unrelated journal tests run concurrently in the same process.
fn dir_tag(dir: &std::path::Path) -> String {
    dir.file_name().expect("scratch dir name").to_string_lossy().into_owned()
}

/// An armed `journal.append.write=shortwrite(N)` failpoint tears a live
/// append mid-frame; the rollback must leave the journal byte-exact at
/// the last good frame so every later append still round-trips.
#[test]
fn armed_shortwrite_failpoint_tears_one_append_and_rolls_back() {
    let dir = scratch("fp-shortwrite");
    let tag = dir_tag(&dir);
    let (mut journal, _, _) = Journal::open(&dir).expect("open");
    journal.append("before@0", b"kept").expect("append before fault");

    bitline_failpoint::arm(&format!("journal.append.write[{tag}]=shortwrite(5)")).unwrap();
    let fired_before = bitline_failpoint::fired("journal.append.write");
    let err = journal.append("torn@1", b"never lands").expect_err("torn append fails");
    assert_eq!(err.raw_os_error(), Some(28), "the tear surfaces as ENOSPC");
    assert_eq!(bitline_failpoint::fired("journal.append.write"), fired_before + 1);
    bitline_failpoint::disarm("journal.append.write");

    // Disarmed, appends work again — and land *after* the rolled-back
    // frame boundary, not after torn residue.
    journal.append("after@2", b"also kept").expect("append after fault");
    assert!(!journal.contains("torn@1"), "the torn key is not remembered");

    let (_, entries, report) = Journal::open(&dir).expect("reopen");
    assert_eq!(
        entries.iter().map(|e| e.key.as_str()).collect::<Vec<_>>(),
        vec!["before@0", "after@2"],
        "exactly the successful appends survive, in order"
    );
    assert_eq!(report.quarantined, 0, "rollback leaves no torn bytes to quarantine");
    assert!(!report.truncated_tail, "rollback leaves no partial frame");
    std::fs::remove_dir_all(&dir).ok();
}

/// An injected fsync error fails the append cleanly (rolled back, key not
/// recorded), modelling a disk that accepts bytes it cannot make durable.
#[test]
fn armed_fsync_failpoint_fails_the_append_cleanly() {
    let dir = scratch("fp-fsync");
    let tag = dir_tag(&dir);
    let (mut journal, _, _) = Journal::open(&dir).expect("open");

    bitline_failpoint::arm(&format!("journal.append.fsync[{tag}]=err(EIO)")).unwrap();
    let err = journal.append("unsynced@0", b"gone").expect_err("fsync fault fails the append");
    assert_eq!(err.raw_os_error(), Some(5));
    bitline_failpoint::disarm("journal.append.fsync");

    journal.append("synced@1", b"kept").expect("append after fault");
    let (_, entries, report) = Journal::open(&dir).expect("reopen");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].key, "synced@1");
    assert_eq!(report.quarantined, 0);
    assert!(!report.truncated_tail);
    std::fs::remove_dir_all(&dir).ok();
}

/// An injected failure in `atomic_write` leaves the target untouched and
/// no temp residue: callers see old-or-new, never a torn mix.
#[test]
fn armed_atomic_write_failpoint_leaves_old_contents_and_no_residue() {
    let dir = scratch("fp-atomic");
    let tag = dir_tag(&dir);
    let path = dir.join("out.bin");
    atomic_write(&path, b"original").expect("seed contents");

    bitline_failpoint::arm(&format!("journal.atomic_write[{tag}]=shortwrite(3)")).unwrap();
    let err = atomic_write(&path, b"replacement").expect_err("torn tmp-write fails");
    assert_eq!(err.raw_os_error(), Some(28));
    bitline_failpoint::disarm("journal.atomic_write");

    assert_eq!(std::fs::read(&path).expect("read"), b"original", "target untouched");
    let residue: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(residue.is_empty(), "failed atomic_write cleans its temp: {residue:?}");

    atomic_write(&path, b"replacement").expect("disarmed write succeeds");
    assert_eq!(std::fs::read(&path).expect("read"), b"replacement");
    std::fs::remove_dir_all(&dir).ok();
}

/// A single flipped payload bit fails that entry's CRC: the entry is
/// quarantined, its neighbours are untouched.
#[test]
fn flipped_bit_quarantines_only_the_damaged_entry() {
    let dir = scratch("bitflip");
    let entries: Vec<(String, Vec<u8>)> =
        (0..3).map(|i| (format!("bench{i}@{i:016x}"), vec![0x5a; 16])).collect();
    write_journal(&dir, &entries);
    let mut bytes = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal bytes");

    // Flip one bit in the middle entry's *value* bytes, leaving both length
    // prefixes intact so framing still walks the file.
    let frame = |k: &str, v: &[u8]| 8 + 4 + k.len() + v.len();
    let entry1_start = 8 + frame(&entries[0].0, &entries[0].1);
    let target = entry1_start + frame(&entries[1].0, &entries[1].1) - 1;
    bytes[target] ^= 0x10;
    std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("write damaged");

    let (_, loaded, report) = Journal::open(&dir).expect("open damaged");
    assert_eq!(report.quarantined, 1, "exactly the flipped entry is dropped");
    assert_eq!(loaded.len(), 2);
    assert_eq!(loaded[0].key, entries[0].0);
    assert_eq!(loaded[1].key, entries[2].0, "the entry *after* the damage survives");
    assert!(report.compacted, "damage triggers a compaction rewrite");

    // The quarantine is durable: the rewritten file no longer carries the
    // bad frame.
    let (_, reloaded, clean) = Journal::open(&dir).expect("reopen");
    assert_eq!(reloaded.len(), 2);
    assert_eq!(clean.quarantined, 0);
    std::fs::remove_dir_all(&dir).ok();
}
