//! Crash-safety properties of the checkpoint journal: arbitrary entry
//! sets survive a write/reopen cycle, a torn tail cut at *every* byte
//! offset never loses a fully synced entry, and a flipped bit quarantines
//! exactly the damaged entry.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bitline_exec::journal::JOURNAL_FILE;
use bitline_exec::Journal;
use proptest::prelude::*;

/// A scratch directory unique to this process and call site.
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bitline-journal-it-{}-{label}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_journal(dir: &std::path::Path, entries: &[(String, Vec<u8>)]) {
    let mut journal = Journal::open_fresh(dir).expect("fresh journal");
    for (key, value) in entries {
        journal.append(key, value).expect("append");
    }
}

/// Journal entries: printable unique-ish keys plus arbitrary payload bytes.
fn entry_sets() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    prop::collection::vec((any::<u64>(), prop::collection::vec(any::<u8>(), 0..96)), 1..12)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (tag, value))| (format!("bench{i}@{tag:016x}"), value))
                .collect()
        })
}

proptest! {
    /// Whatever was appended comes back verbatim, in order, with nothing
    /// quarantined.
    fn roundtrip_preserves_every_entry(entries in entry_sets()) {
        let dir = scratch("roundtrip");
        write_journal(&dir, &entries);

        let (_, loaded, report) = Journal::open(&dir).expect("reopen");
        prop_assert_eq!(loaded.len(), entries.len());
        prop_assert_eq!(report.loaded, entries.len());
        prop_assert_eq!(report.quarantined, 0);
        prop_assert!(!report.truncated_tail);
        for (got, (key, value)) in loaded.iter().zip(&entries) {
            prop_assert_eq!(&got.key, key);
            prop_assert_eq!(&got.value, value);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Simulates a crash mid-append: the journal cut at **every** byte offset
/// still yields each entry whose bytes were fully flushed, and never
/// invents data.
#[test]
fn truncated_tail_recovers_every_complete_entry() {
    let dir = scratch("truncate");
    let entries: Vec<(String, Vec<u8>)> =
        (0..4).map(|i| (format!("bench{i}@{i:016x}"), vec![i as u8; 5 + i * 7])).collect();
    write_journal(&dir, &entries);
    let full = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal bytes");

    // Byte offsets where each entry's frame ends (magic is 8 bytes).
    let mut ends = vec![8usize];
    for (key, value) in &entries {
        ends.push(ends.last().unwrap() + 8 + 4 + key.len() + value.len());
    }
    assert_eq!(*ends.last().unwrap(), full.len(), "frame arithmetic matches the file");

    for cut in 0..=full.len() {
        let case = scratch("truncate-case");
        std::fs::write(case.join(JOURNAL_FILE), &full[..cut]).expect("write prefix");
        let (_, loaded, report) = Journal::open(&case).expect("open truncated");

        // Every entry fully contained in the prefix must survive.
        let complete = ends.iter().filter(|&&e| e <= cut.max(8)).count().saturating_sub(1);
        assert_eq!(loaded.len(), complete, "cut at byte {cut}/{}", full.len());
        for (got, (key, value)) in loaded.iter().zip(&entries) {
            assert_eq!(&got.key, key, "cut at byte {cut}");
            assert_eq!(&got.value, value, "cut at byte {cut}");
        }
        // A clean cut on an entry boundary is not a torn tail; anything
        // else — including a partial magic — is. An empty file is pristine.
        let on_boundary = ends.contains(&cut) || cut == 0;
        assert_eq!(report.truncated_tail, !on_boundary, "cut at byte {cut}");

        // The damaged file was compacted: reopening is clean and appends
        // still work.
        let (mut journal, reloaded, clean) = Journal::open(&case).expect("reopen compacted");
        assert_eq!(reloaded.len(), complete);
        assert!(!clean.truncated_tail, "compaction must leave a clean file (cut {cut})");
        journal.append("after@0000000000000000", b"tail").expect("append after damage");
        std::fs::remove_dir_all(&case).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A single flipped payload bit fails that entry's CRC: the entry is
/// quarantined, its neighbours are untouched.
#[test]
fn flipped_bit_quarantines_only_the_damaged_entry() {
    let dir = scratch("bitflip");
    let entries: Vec<(String, Vec<u8>)> =
        (0..3).map(|i| (format!("bench{i}@{i:016x}"), vec![0x5a; 16])).collect();
    write_journal(&dir, &entries);
    let mut bytes = std::fs::read(dir.join(JOURNAL_FILE)).expect("journal bytes");

    // Flip one bit in the middle entry's *value* bytes, leaving both length
    // prefixes intact so framing still walks the file.
    let frame = |k: &str, v: &[u8]| 8 + 4 + k.len() + v.len();
    let entry1_start = 8 + frame(&entries[0].0, &entries[0].1);
    let target = entry1_start + frame(&entries[1].0, &entries[1].1) - 1;
    bytes[target] ^= 0x10;
    std::fs::write(dir.join(JOURNAL_FILE), &bytes).expect("write damaged");

    let (_, loaded, report) = Journal::open(&dir).expect("open damaged");
    assert_eq!(report.quarantined, 1, "exactly the flipped entry is dropped");
    assert_eq!(loaded.len(), 2);
    assert_eq!(loaded[0].key, entries[0].0);
    assert_eq!(loaded[1].key, entries[2].0, "the entry *after* the damage survives");
    assert!(report.compacted, "damage triggers a compaction rewrite");

    // The quarantine is durable: the rewritten file no longer carries the
    // bad frame.
    let (_, reloaded, clean) = Journal::open(&dir).expect("reopen");
    assert_eq!(reloaded.len(), 2);
    assert_eq!(clean.quarantined, 0);
    std::fs::remove_dir_all(&dir).ok();
}
