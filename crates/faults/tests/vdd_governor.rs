//! End-to-end behaviour of the low-Vdd guardband ladder and governor at
//! the policy level: a safe ladder is event-free, a hot ladder escalates,
//! recovers its replay rate at higher steps, and pins via the fail-safe.

use bitline_cache::PrechargePolicy;
use bitline_faults::{FaultConfig, FaultInjectingPolicy, GovernorConfig, VddConfig, VddStep};
use gated_precharge::GatedPolicy;

const SUBARRAYS: usize = 4;
const THRESHOLD: u64 = 50;

fn gated() -> Box<GatedPolicy> {
    Box::new(GatedPolicy::new(SUBARRAYS, THRESHOLD, 1))
}

/// Round-robin accesses with gaps past the decay threshold, so every
/// access finds its subarray isolated (cold) and speculates.
fn drive(policy: &mut dyn PrechargePolicy, accesses: usize) -> (Vec<u32>, u64, u64) {
    let mut cycle = 0u64;
    let mut latencies = Vec::with_capacity(accesses);
    let mut events = 0u64;
    for i in 0..accesses {
        cycle += 2 * THRESHOLD;
        latencies.push(policy.access(i % SUBARRAYS, cycle));
        if policy.take_fault().is_some() {
            events += 1;
        }
    }
    (latencies, cycle, events)
}

/// A ladder whose aggressive step mis-senses most speculative reads.
fn hot_ladder(governor: Option<GovernorConfig>) -> VddConfig {
    VddConfig {
        steps: vec![
            VddStep { scale: 0.75, upset_probability: 0.9 },
            VddStep { scale: 0.875, upset_probability: 0.2 },
            VddStep { scale: 1.0, upset_probability: 0.0 },
        ],
        governor,
    }
}

#[test]
fn a_safe_ladder_is_latency_identical_and_event_free() {
    let mut plain = gated();
    let mut wrapped = FaultInjectingPolicy::new(gated(), FaultConfig::with_rate(0.0, 7), SUBARRAYS)
        .with_vdd(VddConfig::fixed(0.95, 0.0));
    let (want, end, _) = drive(plain.as_mut(), 400);
    let (got, _, events) = drive(&mut wrapped, 400);
    assert_eq!(got, want, "a guardband-safe supply must not change latencies");
    assert_eq!(events, 0, "a guardband-safe supply must raise no fault events");
    let _ = plain.finalize(end);
    let _ = wrapped.finalize(end);
    let report = wrapped.vdd_report().expect("ladder armed");
    assert_eq!(report.upsets, 0);
    assert!(report.accesses() > 0, "cold accesses must still be censused");
    assert!(report.is_consistent());
}

#[test]
fn a_static_hot_step_replays_and_exposes_sdc() {
    let mut wrapped = FaultInjectingPolicy::new(gated(), FaultConfig::with_rate(0.0, 7), SUBARRAYS)
        .with_vdd(hot_ladder(None));
    let (_, end, events) = drive(&mut wrapped, 600);
    let _ = wrapped.finalize(end);
    let report = wrapped.vdd_report().expect("ladder armed").clone();
    assert!(report.upsets > 100, "a 90% upset step must mis-sense heavily");
    assert!(report.replays > 0, "the margin detector must replay most upsets");
    assert!(report.sdc > 0, "a 98% detector must leak some SDC at this volume");
    assert!(report.is_consistent());
    assert_eq!(report.escalations(), 0, "no governor, no ladder movement");
    assert_eq!(report.step_accesses[1] + report.step_accesses[2], 0);
    assert!(events > 0, "replays must surface as fault events");
}

#[test]
fn the_governor_escalates_recovers_and_pins() {
    let governor = GovernorConfig {
        window: 8,
        escalate_replays: 2,
        clean_windows_to_relax: 2,
        max_escalations: 3,
    };
    let mut wrapped = FaultInjectingPolicy::new(gated(), FaultConfig::with_rate(0.0, 7), SUBARRAYS)
        .with_vdd(hot_ladder(Some(governor)));
    let (_, end, _) = drive(&mut wrapped, 2_000);
    let _ = wrapped.finalize(end);
    let report = wrapped.vdd_report().expect("ladder armed").clone();

    // The spike: the aggressive step mis-sensed and replayed.
    assert!(report.upsets > 0 && report.replays > 0);
    // Escalation fired and walked subarrays up the guardband ladder.
    assert!(report.escalations() > 0, "noisy windows must escalate");
    assert!(report.step_accesses[1] > 0, "the middle guardband step must see traffic");
    // Recovery: traffic reached the nominal step, where nothing upsets.
    assert!(report.step_accesses[2] > 0, "escalation must reach the nominal step");
    // The fail-safe: repeated escalation pinned subarrays to nominal.
    assert!(report.pinned_subarrays() > 0, "repeated escalation must pin");
    for sub in report.per_subarray.iter().filter(|s| s.pinned) {
        assert_eq!(usize::from(sub.step), 2, "a pinned subarray sits at nominal");
        assert!(sub.escalations >= 3, "the pin requires repeated escalation");
    }
    // Replay-rate recovery: once everything pinned, the tail of the run
    // is upset-free, so upsets are bounded well below the access count.
    assert!(
        report.upsets < report.accesses() / 2,
        "the governor must spend most of the run above the hot step \
         ({} upsets over {} speculative accesses)",
        report.upsets,
        report.accesses()
    );
    assert!(report.is_consistent());
}

#[test]
fn governed_runs_are_seed_deterministic() {
    let run = || {
        let mut wrapped =
            FaultInjectingPolicy::new(gated(), FaultConfig::with_rate(0.0, 42), SUBARRAYS)
                .with_vdd(hot_ladder(Some(GovernorConfig::default())));
        let (latencies, end, _) = drive(&mut wrapped, 1_000);
        let _ = wrapped.finalize(end);
        (latencies, format!("{:?}", wrapped.vdd_report().expect("ladder armed")))
    };
    assert_eq!(run(), run(), "same seed must replay the same governed run");
}
