//! Property tests for the fault layer (ISSUE satellite): rate-0
//! transparency, seed determinism, and counter consistency.

use bitline_cache::PrechargePolicy;
use bitline_faults::{FaultConfig, FaultInjectingPolicy, FaultReport};
use gated_precharge::GatedPolicy;
use proptest::prelude::*;

const SUBARRAYS: usize = 8;

fn gated() -> Box<GatedPolicy> {
    Box::new(GatedPolicy::new(SUBARRAYS, 50, 1))
}

/// Sparse access stream: (subarray, cycle gap) pairs, gaps large enough to
/// cross the decay threshold now and then.
fn access_stream() -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0usize..SUBARRAYS, 1u64..200), 1..400)
}

fn drive(policy: &mut dyn PrechargePolicy, accesses: &[(usize, u64)]) -> (Vec<u32>, u64) {
    let mut cycle = 0;
    let mut latencies = Vec::with_capacity(accesses.len());
    for &(s, gap) in accesses {
        cycle += gap;
        latencies.push(policy.access(s, cycle));
        // Faults must be drained like the cache drains them, or `pending`
        // would coalesce across accesses.
        let _ = policy.take_fault();
    }
    (latencies, cycle)
}

proptest! {
    /// With rate 0 the decorator is bit-identical to the undecorated
    /// policy: same per-access latencies, same finalize report, no events.
    fn rate_zero_is_transparent(accesses in access_stream()) {
        let mut plain = gated();
        let mut wrapped =
            FaultInjectingPolicy::new(gated(), FaultConfig::disabled(), SUBARRAYS);

        let mut cycle = 0;
        for &(s, gap) in &accesses {
            cycle += gap;
            prop_assert_eq!(plain.access(s, cycle), wrapped.access(s, cycle));
            prop_assert!(wrapped.take_fault().is_none());
        }
        let end = cycle + 10;
        prop_assert_eq!(plain.finalize(end), wrapped.finalize(end));
        prop_assert_eq!(wrapped.report().injected(), 0);
        prop_assert_eq!(wrapped.report().decay_flips(), 0);
    }

    /// A fixed fault seed gives a reproducible run: identical latencies and
    /// identical fault counters.
    fn fixed_seed_is_deterministic(accesses in access_stream(), seed in any::<u64>()) {
        let cfg = FaultConfig::with_rate(0.2, seed);
        let mut a = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        let mut b = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        let (lat_a, _) = drive(&mut a, &accesses);
        let (lat_b, _) = drive(&mut b, &accesses);
        prop_assert_eq!(lat_a, lat_b);
        prop_assert_eq!(a.report(), b.report());
    }

    /// Counter invariant under any stream, rate, and seed:
    /// detected + silent == injected and replayed == detected.
    fn counters_are_consistent(
        accesses in access_stream(),
        seed in any::<u64>(),
        rate_milli in 0u64..=1000,
    ) {
        let cfg = FaultConfig::with_rate(rate_milli as f64 / 1000.0, seed);
        let mut p = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        drive(&mut p, &accesses);
        prop_assert!(p.report().is_consistent(), "{}", p.report().summary());
    }

    /// Different fault seeds leave the leakage multipliers different (the
    /// log-normal draw actually depends on the seed).
    fn multipliers_depend_on_seed(seed in any::<u64>()) {
        let a = FaultInjectingPolicy::new(gated(), FaultConfig::with_rate(0.1, seed), SUBARRAYS);
        let b = FaultInjectingPolicy::new(
            gated(),
            FaultConfig::with_rate(0.1, seed.wrapping_add(1)),
            SUBARRAYS,
        );
        let differs = (0..SUBARRAYS).any(|s| {
            (a.injector().leakage_multiplier(s) - b.injector().leakage_multiplier(s)).abs()
                > 1e-12
        });
        prop_assert!(differs);
    }
}

#[test]
fn fail_safe_pins_a_noisy_subarray() {
    // Every access cold (threshold 50, gaps 100), certain upset, certain
    // detection: the second detected upset must pin subarray 0.
    let cfg = FaultConfig {
        upset_rate: 1.0,
        detection_rate: 1.0,
        decay_flip_rate: 0.0,
        fail_safe_threshold: Some(2),
        ..FaultConfig::with_rate(1.0, 7)
    };
    let mut p = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
    let mut cycle = 0;
    let mut extras = Vec::new();
    let mut pinned_after = None;
    for i in 0..50 {
        cycle += 100;
        extras.push(p.access(0, cycle));
        let _ = p.take_fault();
        if pinned_after.is_none() && p.report().per_subarray[0].pinned {
            pinned_after = Some(i);
        }
    }
    let report: FaultReport = p.report().clone();
    let pinned_after = pinned_after.expect("50 near-certain upsets must trip a threshold of 2");
    assert_eq!(report.degraded_subarrays(), 1);
    assert_eq!(report.per_subarray[0].detected, 2, "{}", report.summary());
    // Every pre-pin access was cold (threshold 50, gaps of 100); once
    // pinned, the subarray is statically pulled up and never delays.
    assert!(extras[..=pinned_after].iter().all(|&e| e > 0), "{extras:?}");
    assert!(extras[pinned_after + 1..].iter().all(|&e| e == 0), "{extras:?}");
    // Pinned subarray burns full leakage from the pin cycle on.
    let act = p.finalize(cycle + 50);
    assert!(act.per_subarray[0].pulled_up_cycles > 50.0);
}

// ---------------------------------------------------------------------------
// Error-protection layer (SECDED + scrub + degradation ladder).

proptest! {
    /// With ECC armed the counters stay consistent and the reliability
    /// report partitions exactly onto the fault report: every injected
    /// upset is corrected, a DUE, or SDC; only DUEs replay.
    fn ecc_counters_partition_the_fault_report(
        accesses in access_stream(),
        seed in any::<u64>(),
        rate_milli in 0u64..=1000,
    ) {
        let cfg = FaultConfig::with_rate(rate_milli as f64 / 1000.0, seed).with_secded();
        let mut p = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        drive(&mut p, &accesses);
        let faults = p.report().clone();
        let rel = p.reliability().expect("ECC armed").clone();
        prop_assert!(faults.is_consistent(), "{}", faults.summary());
        prop_assert_eq!(rel.corrected() + rel.due() + rel.sdc(), faults.injected());
        prop_assert_eq!(rel.corrected() + rel.due(), faults.detected());
        prop_assert_eq!(rel.due(), faults.replayed());
        prop_assert_eq!(rel.sdc(), faults.silent());
    }

    /// ECC runs are seed-deterministic, scrub or no scrub.
    fn ecc_runs_are_deterministic(accesses in access_stream(), seed in any::<u64>()) {
        let cfg = FaultConfig::with_rate(0.3, seed).with_secded().with_scrub(2_048);
        let mut a = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        let mut b = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        let (lat_a, end) = drive(&mut a, &accesses);
        let (lat_b, _) = drive(&mut b, &accesses);
        prop_assert_eq!(lat_a, lat_b);
        a.finalize(end);
        b.finalize(end);
        prop_assert_eq!(a.reliability(), b.reliability());
    }
}

#[test]
fn ecc_corrects_what_the_margin_detector_would_replay() {
    // Same stream, same seed: without ECC every upset replays or slips
    // silent; with ECC the overwhelmingly-single flips are corrected in
    // the read path and only true multi-bit patterns replay.
    let accesses: Vec<(usize, u64)> = (0..400).map(|i| (i % SUBARRAYS, 100)).collect();
    let base = FaultConfig::with_rate(0.5, 42);
    let mut plain = FaultInjectingPolicy::new(gated(), base, SUBARRAYS);
    let mut protected = FaultInjectingPolicy::new(gated(), base.with_secded(), SUBARRAYS);
    drive(&mut plain, &accesses);
    drive(&mut protected, &accesses);
    let rel = protected.reliability().expect("ECC armed");
    assert!(rel.corrected() > 0, "singles must be corrected: {}", rel.summary());
    assert!(
        rel.corrected() > rel.due() + rel.sdc(),
        "single-bit upsets dominate: {}",
        rel.summary()
    );
    // Replays collapse: only DUEs pay the full replay penalty now.
    assert!(
        protected.report().replayed() < plain.report().replayed(),
        "ECC must shrink replay traffic ({} vs {})",
        protected.report().replayed(),
        plain.report().replayed(),
    );
}

#[test]
fn scrubbing_clears_latent_errors_and_slashes_sdc() {
    // A hot subarray accumulating corrected-on-read damage: without
    // scrubbing, latent errors pile up and compound follow-on upsets into
    // DUEs/SDC; a background scrubber bounds the latent population.
    let accesses: Vec<(usize, u64)> = (0..4_000).map(|_| (0usize, 100)).collect();
    let base = FaultConfig { variation_sigma: 0.0, ..FaultConfig::with_rate(0.5, 9) }.with_secded();
    // Tiny subarray so latent collisions actually happen in-test.
    let base = FaultConfig { subarray_words: 16, ..base };
    let mut unscrubbed = FaultInjectingPolicy::new(gated(), base, SUBARRAYS);
    let mut scrubbed = FaultInjectingPolicy::new(gated(), base.with_scrub(10_000), SUBARRAYS);
    let (_, end) = drive(&mut unscrubbed, &accesses);
    drive(&mut scrubbed, &accesses);
    unscrubbed.finalize(end);
    scrubbed.finalize(end);
    let bare = unscrubbed.reliability().expect("ECC armed");
    let swept = scrubbed.reliability().expect("ECC armed");
    assert_eq!(bare.latent_cleared(), 0, "no scrubber, nothing cleared");
    assert!(swept.latent_cleared() > 0, "scrubber must clear latents: {}", swept.summary());
    assert!(swept.background_scrub_words > 0, "scrub traffic must be priced");
    assert!(
        swept.due() + swept.sdc() < bare.due() + bare.sdc(),
        "scrubbing must reduce compounded errors ({} vs {})",
        swept.due() + swept.sdc(),
        bare.due() + bare.sdc(),
    );
}

#[test]
fn degradation_ladder_walks_all_three_stages() {
    use bitline_ecc::DegradationStage;
    let cfg = FaultConfig {
        upset_rate: 1.0,
        variation_sigma: 0.0,
        decay_flip_rate: 0.0,
        multi_bit_fraction: 0.5,
        fail_safe_threshold: Some(4),
        scrub_on_detect_threshold: Some(2),
        ..FaultConfig::with_rate(1.0, 11)
    }
    .with_secded();
    let mut p = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
    let mut stages = vec![DegradationStage::CorrectInPlace];
    let mut cycle = 0;
    for _ in 0..200 {
        cycle += 100;
        p.access(0, cycle);
        let _ = p.take_fault();
        let stage = p.reliability().expect("ECC armed").per_subarray[0].stage;
        if stage != *stages.last().expect("nonempty") {
            stages.push(stage);
        }
    }
    assert_eq!(
        stages,
        vec![
            DegradationStage::CorrectInPlace,
            DegradationStage::ScrubOnDetect,
            DegradationStage::FailSafe,
        ],
        "ladder must walk stage 0 → 1 → 2 in order"
    );
    let rel = p.reliability().expect("ECC armed");
    assert!(rel.demand_scrubs() > 0, "stage 1 must fire demand scrubs");
    assert_eq!(rel.per_subarray[0].due, 4, "pin on the fail-safe DUE threshold");
    assert!(p.report().per_subarray[0].pinned, "stage 2 pins the subarray");
    let end = cycle + 10;
    p.finalize(end);
    assert!(p.reliability().expect("ECC armed").pinned_residency_cycles > 0);
}
