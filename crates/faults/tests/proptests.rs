//! Property tests for the fault layer (ISSUE satellite): rate-0
//! transparency, seed determinism, and counter consistency.

use bitline_cache::PrechargePolicy;
use bitline_faults::{FaultConfig, FaultInjectingPolicy, FaultReport};
use gated_precharge::GatedPolicy;
use proptest::prelude::*;

const SUBARRAYS: usize = 8;

fn gated() -> Box<GatedPolicy> {
    Box::new(GatedPolicy::new(SUBARRAYS, 50, 1))
}

/// Sparse access stream: (subarray, cycle gap) pairs, gaps large enough to
/// cross the decay threshold now and then.
fn access_stream() -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0usize..SUBARRAYS, 1u64..200), 1..400)
}

fn drive(policy: &mut dyn PrechargePolicy, accesses: &[(usize, u64)]) -> (Vec<u32>, u64) {
    let mut cycle = 0;
    let mut latencies = Vec::with_capacity(accesses.len());
    for &(s, gap) in accesses {
        cycle += gap;
        latencies.push(policy.access(s, cycle));
        // Faults must be drained like the cache drains them, or `pending`
        // would coalesce across accesses.
        let _ = policy.take_fault();
    }
    (latencies, cycle)
}

proptest! {
    /// With rate 0 the decorator is bit-identical to the undecorated
    /// policy: same per-access latencies, same finalize report, no events.
    fn rate_zero_is_transparent(accesses in access_stream()) {
        let mut plain = gated();
        let mut wrapped =
            FaultInjectingPolicy::new(gated(), FaultConfig::disabled(), SUBARRAYS);

        let mut cycle = 0;
        for &(s, gap) in &accesses {
            cycle += gap;
            prop_assert_eq!(plain.access(s, cycle), wrapped.access(s, cycle));
            prop_assert!(wrapped.take_fault().is_none());
        }
        let end = cycle + 10;
        prop_assert_eq!(plain.finalize(end), wrapped.finalize(end));
        prop_assert_eq!(wrapped.report().injected(), 0);
        prop_assert_eq!(wrapped.report().decay_flips(), 0);
    }

    /// A fixed fault seed gives a reproducible run: identical latencies and
    /// identical fault counters.
    fn fixed_seed_is_deterministic(accesses in access_stream(), seed in any::<u64>()) {
        let cfg = FaultConfig::with_rate(0.2, seed);
        let mut a = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        let mut b = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        let (lat_a, _) = drive(&mut a, &accesses);
        let (lat_b, _) = drive(&mut b, &accesses);
        prop_assert_eq!(lat_a, lat_b);
        prop_assert_eq!(a.report(), b.report());
    }

    /// Counter invariant under any stream, rate, and seed:
    /// detected + silent == injected and replayed == detected.
    fn counters_are_consistent(
        accesses in access_stream(),
        seed in any::<u64>(),
        rate_milli in 0u64..=1000,
    ) {
        let cfg = FaultConfig::with_rate(rate_milli as f64 / 1000.0, seed);
        let mut p = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
        drive(&mut p, &accesses);
        prop_assert!(p.report().is_consistent(), "{}", p.report().summary());
    }

    /// Different fault seeds leave the leakage multipliers different (the
    /// log-normal draw actually depends on the seed).
    fn multipliers_depend_on_seed(seed in any::<u64>()) {
        let a = FaultInjectingPolicy::new(gated(), FaultConfig::with_rate(0.1, seed), SUBARRAYS);
        let b = FaultInjectingPolicy::new(
            gated(),
            FaultConfig::with_rate(0.1, seed.wrapping_add(1)),
            SUBARRAYS,
        );
        let differs = (0..SUBARRAYS).any(|s| {
            (a.injector().leakage_multiplier(s) - b.injector().leakage_multiplier(s)).abs()
                > 1e-12
        });
        prop_assert!(differs);
    }
}

#[test]
fn fail_safe_pins_a_noisy_subarray() {
    // Every access cold (threshold 50, gaps 100), certain upset, certain
    // detection: the second detected upset must pin subarray 0.
    let cfg = FaultConfig {
        upset_rate: 1.0,
        detection_rate: 1.0,
        decay_flip_rate: 0.0,
        fail_safe_threshold: Some(2),
        ..FaultConfig::with_rate(1.0, 7)
    };
    let mut p = FaultInjectingPolicy::new(gated(), cfg, SUBARRAYS);
    let mut cycle = 0;
    let mut extras = Vec::new();
    let mut pinned_after = None;
    for i in 0..50 {
        cycle += 100;
        extras.push(p.access(0, cycle));
        let _ = p.take_fault();
        if pinned_after.is_none() && p.report().per_subarray[0].pinned {
            pinned_after = Some(i);
        }
    }
    let report: FaultReport = p.report().clone();
    let pinned_after = pinned_after.expect("50 near-certain upsets must trip a threshold of 2");
    assert_eq!(report.degraded_subarrays(), 1);
    assert_eq!(report.per_subarray[0].detected, 2, "{}", report.summary());
    // Every pre-pin access was cold (threshold 50, gaps of 100); once
    // pinned, the subarray is statically pulled up and never delays.
    assert!(extras[..=pinned_after].iter().all(|&e| e > 0), "{extras:?}");
    assert!(extras[pinned_after + 1..].iter().all(|&e| e == 0), "{extras:?}");
    // Pinned subarray burns full leakage from the pin cycle on.
    let act = p.finalize(cycle + 50);
    assert!(act.per_subarray[0].pulled_up_cycles > 50.0);
}
