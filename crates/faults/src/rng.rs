//! Deterministic random-number source for fault injection.
//!
//! Fault draws must be reproducible under a fixed seed and independent of
//! the workload generator's `rand` streams, so the injector carries its own
//! SplitMix64 — small, seedable, and with well-understood equidistribution
//! for the modest draw counts a run makes.

/// SplitMix64 generator (Steele, Lea & Flood; the `java.util.SplittableRandom`
/// finalizer).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Bernoulli draw. `p <= 0` never consumes entropy and is always
    /// `false`, so a disabled injector leaves the stream untouched.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            // Consume a draw so call sequences stay aligned with 0 < p < 1.
            let _ = self.next_u64();
            return true;
        }
        self.unit_f64() < p
    }

    /// Approximately standard-normal draw (Irwin–Hall sum of 12 uniforms).
    /// Adequate for process-variation multipliers, which only need the
    /// central ±3σ body of the distribution.
    pub fn normal(&mut self) -> f64 {
        let sum: f64 = (0..12).map(|_| self.unit_f64()).sum();
        sum - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(0xDEAD);
        let mut b = SplitMix64::new(0xDEAD);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_draws_stay_in_range_and_cover_it() {
        let mut rng = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_zero_consumes_nothing() {
        let mut a = SplitMix64::new(3);
        let mut b = SplitMix64::new(3);
        assert!(!a.chance(0.0));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn normal_is_roughly_centred() {
        let mut rng = SplitMix64::new(11);
        let n = 5_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
