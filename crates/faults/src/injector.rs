//! The seeded fault source.

use crate::config::FaultConfig;
use crate::rng::SplitMix64;

/// Deterministic fault source for one cache.
///
/// On construction it draws a log-normal leakage multiplier per subarray
/// (process variation makes some subarrays leak faster and hence upset more
/// often); afterwards it answers Bernoulli queries from the decorator in
/// access order. Same seed, same access stream → same fault sequence.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SplitMix64,
    multipliers: Vec<f64>,
}

/// Cap on the effective per-access upset probability, so a pathological
/// multiplier cannot make every access fail and livelock the retry path.
const MAX_UPSET_P: f64 = 0.95;

impl FaultInjector {
    /// Creates the injector for `subarrays` subarrays.
    #[must_use]
    pub fn new(config: FaultConfig, subarrays: usize) -> FaultInjector {
        let mut rng = SplitMix64::new(config.seed);
        let multipliers = (0..subarrays)
            .map(|_| {
                if config.variation_sigma > 0.0 {
                    (config.variation_sigma * rng.normal()).exp()
                } else {
                    1.0
                }
            })
            .collect();
        FaultInjector { config, rng, multipliers }
    }

    /// The model parameters.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Process-variation leakage multiplier of `subarray`.
    #[must_use]
    pub fn leakage_multiplier(&self, subarray: usize) -> f64 {
        self.multipliers[subarray]
    }

    /// Does this cold access to `subarray` read below sense margin?
    pub fn draw_upset(&mut self, subarray: usize) -> bool {
        if self.config.upset_rate <= 0.0 {
            return false;
        }
        let p = (self.config.upset_rate * self.multipliers[subarray]).min(MAX_UPSET_P);
        self.rng.chance(p)
    }

    /// Does the sense-margin detector catch the upset just injected?
    pub fn draw_detected(&mut self) -> bool {
        self.rng.chance(self.config.detection_rate)
    }

    /// Does this speculative (below-guardband) read to `subarray`
    /// mis-sense? `p` is the ladder step's base probability; the same
    /// process-variation multiplier that makes a subarray leak faster
    /// also makes it develop differential slower. `p == 0` (a step
    /// inside the guardband) consumes no entropy, so governed runs that
    /// settle at nominal keep deterministic draw streams.
    pub fn draw_timing_upset(&mut self, subarray: usize, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let eff = (p * self.multipliers[subarray]).min(MAX_UPSET_P);
        self.rng.chance(eff)
    }

    /// Does a decay counter take a bit flip on this access?
    pub fn draw_decay_flip(&mut self) -> bool {
        if self.config.decay_flip_rate <= 0.0 {
            return false;
        }
        self.rng.chance(self.config.decay_flip_rate)
    }

    /// Is the upset just injected a spatially-correlated double flip on
    /// adjacent columns?
    pub fn draw_multi_bit(&mut self) -> bool {
        if self.config.multi_bit_fraction <= 0.0 {
            return false;
        }
        self.rng.chance(self.config.multi_bit_fraction)
    }

    /// Did this upset land on a word already carrying a latent (corrected
    /// on read but never scrubbed) error? With `latent` damaged words in a
    /// `subarray_words`-word subarray, the collision probability is their
    /// ratio. `latent == 0` consumes no entropy, so scrub-free and
    /// scrub-heavy runs share the same upstream draw stream.
    pub fn draw_latent_hit(&mut self, latent: u32) -> bool {
        if latent == 0 {
            return false;
        }
        let p = f64::from(latent) / f64::from(self.config.subarray_words.max(1));
        self.rng.chance(p.min(1.0))
    }

    /// The payload of the word being read (the codec's behaviour is
    /// data-independent, but the model runs real words through it).
    pub fn draw_data_word(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform bit position in `0..bound` (e.g. a flipped column).
    pub fn draw_bit_position(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        (self.rng.next_u64() % u64::from(bound.max(1))) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = FaultInjector::new(FaultConfig::disabled(), 8);
        for s in 0..8 {
            assert!((inj.leakage_multiplier(s) - 1.0).abs() < 1e-12);
            for _ in 0..100 {
                assert!(!inj.draw_upset(s));
                assert!(!inj.draw_decay_flip());
            }
        }
    }

    #[test]
    fn multipliers_are_seed_stable_and_positive() {
        let a = FaultInjector::new(FaultConfig::with_rate(0.1, 99), 32);
        let b = FaultInjector::new(FaultConfig::with_rate(0.1, 99), 32);
        for s in 0..32 {
            let m = a.leakage_multiplier(s);
            assert!(m > 0.0, "log-normal multiplier must be positive");
            assert!((m - b.leakage_multiplier(s)).abs() < 1e-15);
        }
        // σ = 0.35 keeps the body within a decade.
        assert!(a.multipliers.iter().all(|&m| m > 0.05 && m < 20.0));
    }

    #[test]
    fn upset_rate_scales_frequency() {
        let mut low = FaultInjector::new(FaultConfig::with_rate(0.01, 5), 4);
        let mut high = FaultInjector::new(FaultConfig::with_rate(0.30, 5), 4);
        let trials = 20_000;
        let count = |inj: &mut FaultInjector| (0..trials).filter(|i| inj.draw_upset(i % 4)).count();
        let lo = count(&mut low);
        let hi = count(&mut high);
        assert!(lo > 0, "1% rate over {trials} cold accesses must fire");
        assert!(hi > lo * 5, "30% rate must fire far more often ({hi} vs {lo})");
    }

    #[test]
    fn same_seed_same_draw_sequence() {
        let cfg = FaultConfig::with_rate(0.2, 1234);
        let mut a = FaultInjector::new(cfg, 16);
        let mut b = FaultInjector::new(cfg, 16);
        for i in 0..5_000 {
            assert_eq!(a.draw_upset(i % 16), b.draw_upset(i % 16));
            assert_eq!(a.draw_decay_flip(), b.draw_decay_flip());
        }
    }
}
