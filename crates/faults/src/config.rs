//! Fault-model parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the fault model (see DESIGN.md, "Fault model & recovery
/// semantics" and "Error protection & graceful degradation").
///
/// Rates are per *cold* access — an access that found its subarray isolated
/// and had to pull the bitlines up. Warm accesses read from fully-precharged
/// bitlines and are never upset candidates; decay-counter flips are the one
/// mechanism by which a nominally-warm access becomes cold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Base probability that a cold access reads below sense margin. The
    /// effective per-subarray probability is this times the subarray's
    /// process-variation leakage multiplier.
    pub upset_rate: f64,
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// σ of the log-normal per-subarray leakage multipliers (Mukhopadhyay
    /// et al. report ~30–40% σ for nanoscale leakage under loading effects).
    pub variation_sigma: f64,
    /// Probability per access that a decay counter takes a bit flip,
    /// spuriously isolating a subarray the policy meant to keep precharged.
    pub decay_flip_rate: f64,
    /// Probability that the sense-margin detector catches an upset; misses
    /// are silent data corruption. Unused when [`FaultConfig::ecc`] is on —
    /// the SECDED codec replaces the margin detector entirely.
    pub detection_rate: f64,
    /// Extra cycles a detected upset pays to replay against a freshly
    /// precharged subarray (full pull-up + re-sense).
    pub retry_cycles: u32,
    /// Cycles a spuriously-isolated access pays for bitline pull-up (the
    /// same cold-access penalty the gated policy charges).
    pub pullup_penalty: u32,
    /// Graceful degradation: pin a subarray back to static pull-up once
    /// its error count reaches this threshold (`None` disables). Without
    /// ECC the count is detected upsets; with ECC it is
    /// detected-uncorrectable errors (DUEs), since corrected singles are
    /// business as usual for a protected array.
    pub fail_safe_threshold: Option<u32>,
    /// Protect the array with the (72,64) SECDED codec: upsets become
    /// corrected / DUE / SDC outcomes instead of the binary
    /// detected/silent split.
    pub ecc: bool,
    /// Cycles a corrected read spends in syndrome decode + correction.
    pub correction_cycles: u32,
    /// Fraction of upsets that are spatially-correlated double flips on
    /// adjacent columns (multi-bit upsets defeat pure SEC; SECDED turns
    /// them into DUEs).
    pub multi_bit_fraction: f64,
    /// Background scrub: cycles per full sweep of all subarrays (`None`
    /// disables the scrubber). Requires [`FaultConfig::ecc`].
    pub scrub_period: Option<u64>,
    /// Stage 1 of the degradation ladder: once a subarray accumulates
    /// this many codec-visible errors, every further detected error
    /// triggers a targeted scrub of that subarray (`None` disables).
    pub scrub_on_detect_threshold: Option<u32>,
    /// Words per subarray — the denominator for latent-error compounding
    /// and the cost of one subarray scrub.
    pub subarray_words: u32,
}

impl FaultConfig {
    /// The all-off configuration: injects nothing, perturbs nothing.
    #[must_use]
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            upset_rate: 0.0,
            seed: 0,
            variation_sigma: 0.0,
            decay_flip_rate: 0.0,
            detection_rate: 1.0,
            retry_cycles: 0,
            pullup_penalty: 0,
            fail_safe_threshold: None,
            ecc: false,
            correction_cycles: 0,
            multi_bit_fraction: 0.0,
            scrub_period: None,
            scrub_on_detect_threshold: None,
            subarray_words: 128,
        }
    }

    /// A representative configuration at `upset_rate` with defaults for the
    /// secondary knobs: σ = 0.35 variation, decay flips at 1/8 the upset
    /// rate, 98% detection coverage, 2-cycle replay, 1-cycle pull-up, 5% of
    /// upsets striking two adjacent columns, 1-cycle ECC correction (codec
    /// itself still off — arm it with [`FaultConfig::with_secded`]).
    #[must_use]
    pub fn with_rate(upset_rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            upset_rate,
            seed,
            variation_sigma: 0.35,
            decay_flip_rate: upset_rate / 8.0,
            detection_rate: 0.98,
            retry_cycles: 2,
            pullup_penalty: 1,
            correction_cycles: 1,
            multi_bit_fraction: 0.05,
            ..FaultConfig::disabled()
        }
    }

    /// Same as [`FaultConfig::with_rate`] but with graceful degradation
    /// armed at `threshold` errors per subarray.
    #[must_use]
    pub fn with_fail_safe(upset_rate: f64, seed: u64, threshold: u32) -> FaultConfig {
        FaultConfig {
            fail_safe_threshold: Some(threshold),
            ..FaultConfig::with_rate(upset_rate, seed)
        }
    }

    /// Arms the (72,64) SECDED codec.
    #[must_use]
    pub fn with_secded(mut self) -> FaultConfig {
        self.ecc = true;
        self
    }

    /// Arms the background scrubber at one full sweep per `period` cycles
    /// (requires ECC; enforced by [`FaultConfig::validate`]).
    #[must_use]
    pub fn with_scrub(mut self, period: u64) -> FaultConfig {
        self.scrub_period = Some(period);
        self
    }

    /// Whether this configuration can ever inject a fault.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.upset_rate > 0.0 || self.decay_flip_rate > 0.0
    }

    /// Rejects configurations that would silently misbehave downstream:
    /// rates outside [0, 1] (or NaN), a zero scrub period, scrubbing
    /// without the codec that makes scrubbing meaningful, and a protected
    /// array with no words in it.
    pub fn validate(&self) -> Result<(), String> {
        let probability = |name: &str, v: f64| {
            if v.is_nan() || !(0.0..=1.0).contains(&v) {
                Err(format!("{name} = {v}; must be a probability in [0, 1]"))
            } else {
                Ok(())
            }
        };
        probability("fault rate", self.upset_rate)?;
        probability("detection rate", self.detection_rate)?;
        probability("decay flip rate", self.decay_flip_rate)?;
        probability("multi-bit fraction", self.multi_bit_fraction)?;
        if !self.variation_sigma.is_finite() || self.variation_sigma < 0.0 {
            return Err(format!(
                "variation sigma = {}; must be finite and non-negative",
                self.variation_sigma
            ));
        }
        if self.scrub_period == Some(0) {
            return Err("scrub period = 0 cycles; the scrubber needs a positive sweep period \
                 (omit --scrub-period to disable scrubbing)"
                .to_string());
        }
        if self.scrub_period.is_some() && !self.ecc {
            return Err("scrubbing requires ECC (--ecc): a scrub pass rewrites words through \
                 the SECDED codec"
                .to_string());
        }
        if self.ecc && self.subarray_words == 0 {
            return Err("subarray_words = 0; a protected subarray must hold words".to_string());
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let c = FaultConfig::disabled();
        assert!(!c.enabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_rate_enables() {
        assert!(FaultConfig::with_rate(0.01, 1).enabled());
        assert!(!FaultConfig::with_rate(0.0, 1).enabled());
        assert_eq!(FaultConfig::with_fail_safe(0.01, 1, 10).fail_safe_threshold, Some(10));
    }

    #[test]
    fn builders_arm_protection() {
        let c = FaultConfig::with_rate(0.01, 1).with_secded().with_scrub(4096);
        assert!(c.ecc);
        assert_eq!(c.scrub_period, Some(4096));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_rates() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let c = FaultConfig { upset_rate: bad, ..FaultConfig::disabled() };
            let err = c.validate().expect_err("rate must be rejected");
            assert!(err.contains("fault rate"), "unhelpful error: {err}");
        }
        let c = FaultConfig { multi_bit_fraction: 2.0, ..FaultConfig::with_rate(0.1, 1) };
        assert!(c.validate().is_err());
        let c = FaultConfig { variation_sigma: f64::NAN, ..FaultConfig::with_rate(0.1, 1) };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_scrub_period() {
        let c =
            FaultConfig { scrub_period: Some(0), ..FaultConfig::with_rate(0.1, 1).with_secded() };
        let err = c.validate().expect_err("zero period must be rejected");
        assert!(err.contains("scrub period"), "unhelpful error: {err}");
    }

    #[test]
    fn validate_rejects_scrub_without_ecc() {
        let c = FaultConfig::with_rate(0.1, 1).with_scrub(4096);
        let err = c.validate().expect_err("scrub without ecc must be rejected");
        assert!(err.contains("requires ECC"), "unhelpful error: {err}");
    }
}
