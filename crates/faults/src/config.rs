//! Fault-model parameters.

use serde::{Deserialize, Serialize};

/// Parameters of the fault model (see DESIGN.md, "Fault model & recovery
/// semantics").
///
/// Rates are per *cold* access — an access that found its subarray isolated
/// and had to pull the bitlines up. Warm accesses read from fully-precharged
/// bitlines and are never upset candidates; decay-counter flips are the one
/// mechanism by which a nominally-warm access becomes cold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Base probability that a cold access reads below sense margin. The
    /// effective per-subarray probability is this times the subarray's
    /// process-variation leakage multiplier.
    pub upset_rate: f64,
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// σ of the log-normal per-subarray leakage multipliers (Mukhopadhyay
    /// et al. report ~30–40% σ for nanoscale leakage under loading effects).
    pub variation_sigma: f64,
    /// Probability per access that a decay counter takes a bit flip,
    /// spuriously isolating a subarray the policy meant to keep precharged.
    pub decay_flip_rate: f64,
    /// Probability that the sense-margin detector catches an upset; misses
    /// are silent data corruption.
    pub detection_rate: f64,
    /// Extra cycles a detected upset pays to replay against a freshly
    /// precharged subarray (full pull-up + re-sense).
    pub retry_cycles: u32,
    /// Cycles a spuriously-isolated access pays for bitline pull-up (the
    /// same cold-access penalty the gated policy charges).
    pub pullup_penalty: u32,
    /// Graceful degradation: pin a subarray back to static pull-up once its
    /// detected-upset count reaches this threshold (`None` disables).
    pub fail_safe_threshold: Option<u32>,
}

impl FaultConfig {
    /// The all-off configuration: injects nothing, perturbs nothing.
    #[must_use]
    pub fn disabled() -> FaultConfig {
        FaultConfig {
            upset_rate: 0.0,
            seed: 0,
            variation_sigma: 0.0,
            decay_flip_rate: 0.0,
            detection_rate: 1.0,
            retry_cycles: 0,
            pullup_penalty: 0,
            fail_safe_threshold: None,
        }
    }

    /// A representative configuration at `upset_rate` with defaults for the
    /// secondary knobs: σ = 0.35 variation, decay flips at 1/8 the upset
    /// rate, 98% detection coverage, 2-cycle replay, 1-cycle pull-up.
    #[must_use]
    pub fn with_rate(upset_rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            upset_rate,
            seed,
            variation_sigma: 0.35,
            decay_flip_rate: upset_rate / 8.0,
            detection_rate: 0.98,
            retry_cycles: 2,
            pullup_penalty: 1,
            fail_safe_threshold: None,
        }
    }

    /// Same as [`FaultConfig::with_rate`] but with graceful degradation
    /// armed at `threshold` detected upsets per subarray.
    #[must_use]
    pub fn with_fail_safe(upset_rate: f64, seed: u64, threshold: u32) -> FaultConfig {
        FaultConfig {
            fail_safe_threshold: Some(threshold),
            ..FaultConfig::with_rate(upset_rate, seed)
        }
    }

    /// Whether this configuration can ever inject a fault.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.upset_rate > 0.0 || self.decay_flip_rate > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let c = FaultConfig::disabled();
        assert!(!c.enabled());
    }

    #[test]
    fn with_rate_enables() {
        assert!(FaultConfig::with_rate(0.01, 1).enabled());
        assert!(!FaultConfig::with_rate(0.0, 1).enabled());
        assert_eq!(FaultConfig::with_fail_safe(0.01, 1, 10).fail_safe_threshold, Some(10));
    }
}
