//! Low-Vdd timing speculation: the guardband ladder and its governor.
//!
//! Running a subarray below nominal supply stretches bitline development
//! past the sense-amp strobe (see `bitline-cmos::vdd`), so cold reads
//! become *speculative*: each one mis-senses with a probability fixed by
//! the supply step, and a mis-sensed read flows through the exact same
//! detect → full-precharge replay machinery as a leakage upset.
//!
//! The policy layer consumes two things from here:
//!
//! * [`VddConfig`] — a **guardband ladder** of supply steps, aggressive
//!   (lowest Vdd, highest upset probability) first, nominal last. The
//!   upset probabilities are precomputed by the caller from the
//!   technology-node curve, so this crate stays free of circuit math.
//! * [`GovernorConfig`] — the adaptive controller: per subarray, replay
//!   rate is observed over a sliding window of speculative accesses;
//!   a noisy window escalates one step toward nominal, a run of clean
//!   windows (hysteresis) relaxes one step back, and after
//!   `max_escalations` total escalations the subarray is **pinned** to
//!   the nominal step for good — the fail-safe that stops a marginal
//!   subarray from thrashing up and down the ladder.
//!
//! [`VddReport`] mirrors all of it per run: upsets / replays / SDC from
//! the speculation source, ladder movement, pins, and the per-step
//! access census the energy accountant uses to price a governed run.

use serde::{Deserialize, Serialize};

/// One rung of the guardband ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VddStep {
    /// Supply scale relative to nominal (1.0 = Table 1 Vdd).
    pub scale: f64,
    /// Probability that one speculative (cold) read at this step
    /// mis-senses, before the per-subarray variation multiplier.
    pub upset_probability: f64,
}

/// Adaptive-governor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Speculative accesses per evaluation window.
    pub window: u32,
    /// Replays-per-window count at or above which the window is "noisy"
    /// and the subarray escalates one step toward nominal.
    pub escalate_replays: u32,
    /// Consecutive replay-free windows required before relaxing one step
    /// back toward aggressive (the hysteresis).
    pub clean_windows_to_relax: u32,
    /// Total escalations after which the subarray is pinned to the
    /// nominal step permanently (the fail-safe).
    pub max_escalations: u32,
}

impl Default for GovernorConfig {
    fn default() -> GovernorConfig {
        GovernorConfig {
            window: 32,
            escalate_replays: 2,
            clean_windows_to_relax: 2,
            max_escalations: 3,
        }
    }
}

/// Timing-speculation configuration handed to the fault decorator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VddConfig {
    /// The guardband ladder, aggressive first, nominal last. A single
    /// step means a static (ungoverned) supply.
    pub steps: Vec<VddStep>,
    /// The adaptive governor; `None` holds every subarray at step 0.
    pub governor: Option<GovernorConfig>,
}

impl VddConfig {
    /// A static supply at `scale` with the given upset probability.
    #[must_use]
    pub fn fixed(scale: f64, upset_probability: f64) -> VddConfig {
        VddConfig { steps: vec![VddStep { scale, upset_probability }], governor: None }
    }

    /// Whether this configuration can ever mis-sense a read. A scale
    /// still inside the designed guardband has probability zero on every
    /// step and needs no decorator at all.
    #[must_use]
    pub fn speculating(&self) -> bool {
        self.steps.iter().any(|s| s.upset_probability > 0.0)
    }

    /// Rejects ladders that would misbehave downstream: no steps,
    /// non-finite scales, probabilities outside [0, 1], or a ladder that
    /// does not run aggressive → conservative.
    pub fn validate(&self) -> Result<(), String> {
        if self.steps.is_empty() {
            return Err("vdd ladder has no steps".to_string());
        }
        for (i, step) in self.steps.iter().enumerate() {
            if !step.scale.is_finite() || step.scale <= 0.0 {
                return Err(format!(
                    "vdd step {i} scale = {}; must be finite and positive",
                    step.scale
                ));
            }
            if step.upset_probability.is_nan() || !(0.0..=1.0).contains(&step.upset_probability) {
                return Err(format!(
                    "vdd step {i} upset probability = {}; must be a probability in [0, 1]",
                    step.upset_probability
                ));
            }
        }
        for pair in self.steps.windows(2) {
            if pair[1].scale < pair[0].scale {
                return Err(
                    "vdd ladder must run aggressive (low) -> conservative (high)".to_string()
                );
            }
        }
        if let Some(g) = &self.governor {
            if g.window == 0 {
                return Err("vdd governor window = 0 accesses".to_string());
            }
        }
        Ok(())
    }
}

/// Per-subarray speculation counters and final governor state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubarrayVdd {
    /// Final ladder step index the subarray settled on.
    pub step: u8,
    /// Ladder escalations (toward nominal) this subarray took.
    pub escalations: u64,
    /// Ladder relaxations (back toward aggressive) this subarray took.
    pub deescalations: u64,
    /// Whether the fail-safe pinned this subarray to the nominal step.
    pub pinned: bool,
}

/// Whole-run timing-speculation summary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VddReport {
    /// Per-subarray ladder state.
    pub per_subarray: Vec<SubarrayVdd>,
    /// Speculative reads that mis-sensed (the timing-upset source).
    pub upsets: u64,
    /// Mis-sensed reads detected and replayed against a full precharge.
    pub replays: u64,
    /// Mis-sensed reads corrected in the read path by the SECDED codec.
    pub corrected: u64,
    /// Mis-sensed reads that escaped detection (silent data corruption —
    /// the SDC exposure of running below the guardband).
    pub sdc: u64,
    /// Speculative (cold) accesses sensed at each ladder step, summed
    /// over subarrays — the census the energy accountant prices with.
    pub step_accesses: Vec<u64>,
}

impl VddReport {
    /// An empty report over `subarrays` subarrays and `steps` rungs.
    #[must_use]
    pub fn new(subarrays: usize, steps: usize) -> VddReport {
        VddReport {
            per_subarray: vec![SubarrayVdd::default(); subarrays],
            upsets: 0,
            replays: 0,
            corrected: 0,
            sdc: 0,
            step_accesses: vec![0; steps],
        }
    }

    /// Total speculative accesses across every ladder step.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.step_accesses.iter().sum()
    }

    /// Total ladder escalations.
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.escalations).sum()
    }

    /// Total ladder relaxations.
    #[must_use]
    pub fn deescalations(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.deescalations).sum()
    }

    /// Subarrays the fail-safe pinned to nominal.
    #[must_use]
    pub fn pinned_subarrays(&self) -> usize {
        self.per_subarray.iter().filter(|s| s.pinned).count()
    }

    /// Counter invariant: every mis-sensed read resolved exactly one way.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.replays + self.corrected + self.sdc == self.upsets
    }

    /// Mean supply scale over the speculative accesses, weighted by the
    /// per-step census, through `f` (e.g. the dynamic-energy factor).
    /// Returns `f(fallback_scale)` when nothing speculated.
    #[must_use]
    pub fn access_weighted_factor(
        &self,
        step_scales: &[f64],
        fallback_scale: f64,
        f: impl Fn(f64) -> f64,
    ) -> f64 {
        let total = self.accesses();
        if total == 0 {
            return f(fallback_scale);
        }
        let mut acc = 0.0;
        for (i, &n) in self.step_accesses.iter().enumerate() {
            let scale = step_scales.get(i).copied().unwrap_or(fallback_scale);
            acc += f(scale) * n as f64;
        }
        acc / total as f64
    }

    /// Accumulates this report's totals into the global metrics registry
    /// under `vdd.{cache}.*` (e.g. `vdd.d.replays`). Called once per
    /// completed run, so the counters track finished physics and are
    /// identical across job counts.
    pub fn record_metrics(&self, cache: &str) {
        let registry = bitline_obs::registry();
        registry.counter(&format!("vdd.{cache}.upsets")).add(self.upsets);
        registry.counter(&format!("vdd.{cache}.replays")).add(self.replays);
        registry.counter(&format!("vdd.{cache}.sdc")).add(self.sdc);
        registry.counter(&format!("vdd.{cache}.escalations")).add(self.escalations());
        registry.counter(&format!("vdd.{cache}.deescalations")).add(self.deescalations());
        registry
            .counter(&format!("vdd.{cache}.pinned_subarrays"))
            .add(u64::try_from(self.pinned_subarrays()).unwrap_or(u64::MAX));
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "speculative accesses {}  upsets {}  replayed {}  corrected {}  sdc {}  \
             escalations {}  relaxations {}  pinned {}/{} subarrays",
            self.accesses(),
            self.upsets,
            self.replays,
            self.corrected,
            self.sdc,
            self.escalations(),
            self.deescalations(),
            self.pinned_subarrays(),
            self.per_subarray.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_config_is_a_one_step_ladder() {
        let c = VddConfig::fixed(0.85, 0.1);
        assert_eq!(c.steps.len(), 1);
        assert!(c.speculating());
        assert!(c.validate().is_ok());
        assert!(!VddConfig::fixed(0.95, 0.0).speculating());
    }

    #[test]
    fn validate_rejects_broken_ladders() {
        assert!(VddConfig { steps: vec![], governor: None }.validate().is_err());
        assert!(VddConfig::fixed(f64::NAN, 0.1).validate().is_err());
        assert!(VddConfig::fixed(0.8, f64::INFINITY).validate().is_err());
        assert!(VddConfig::fixed(0.8, 1.5).validate().is_err());
        let inverted = VddConfig {
            steps: vec![
                VddStep { scale: 1.0, upset_probability: 0.0 },
                VddStep { scale: 0.8, upset_probability: 0.3 },
            ],
            governor: None,
        };
        assert!(inverted.validate().is_err());
        let zero_window = VddConfig {
            governor: Some(GovernorConfig { window: 0, ..GovernorConfig::default() }),
            ..VddConfig::fixed(0.8, 0.3)
        };
        assert!(zero_window.validate().is_err());
    }

    #[test]
    fn report_totals_and_invariant() {
        let mut r = VddReport::new(2, 3);
        r.step_accesses = vec![10, 5, 1];
        r.upsets = 4;
        r.replays = 2;
        r.corrected = 1;
        r.sdc = 1;
        r.per_subarray[0].escalations = 2;
        r.per_subarray[1].escalations = 1;
        r.per_subarray[1].deescalations = 1;
        r.per_subarray[1].pinned = true;
        assert_eq!(r.accesses(), 16);
        assert_eq!(r.escalations(), 3);
        assert_eq!(r.deescalations(), 1);
        assert_eq!(r.pinned_subarrays(), 1);
        assert!(r.is_consistent());
        r.sdc = 2;
        assert!(!r.is_consistent());
    }

    #[test]
    fn access_weighted_factor_follows_the_census() {
        let mut r = VddReport::new(1, 2);
        let scales = [0.8, 1.0];
        // Nothing speculated: price at the fallback.
        assert!((r.access_weighted_factor(&scales, 0.8, |s| s * s) - 0.64).abs() < 1e-12);
        // All accesses at nominal: factor 1.
        r.step_accesses = vec![0, 10];
        assert!((r.access_weighted_factor(&scales, 0.8, |s| s * s) - 1.0).abs() < 1e-12);
        // An even split averages the factors.
        r.step_accesses = vec![10, 10];
        let want = (0.64 + 1.0) / 2.0;
        assert!((r.access_weighted_factor(&scales, 0.8, |s| s * s) - want).abs() < 1e-12);
    }
}
