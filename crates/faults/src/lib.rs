//! Fault injection and recovery for gated-precharge caches.
//!
//! Gated precharging deliberately lets cold subarrays' bitlines leak
//! (Section 6 of the paper); in real nanoscale CMOS that means a read
//! against a partially discharged subarray can fall below sense margin —
//! the variability regime of Mukhopadhyay et al.'s leakage analysis and the
//! read-failure territory TS Cache guards with timing speculation and
//! replay. This crate makes that failure mode simulable:
//!
//! * [`FaultInjector`] — deterministic, seeded fault source: sense-margin
//!   read upsets on cold accesses, per-subarray process-variation leakage
//!   multipliers (log-normal), and decay-counter bit flips;
//! * [`FaultInjectingPolicy`] — a decorator over any
//!   [`PrechargePolicy`](bitline_cache::PrechargePolicy) that injects those
//!   faults and raises [`FaultEvent`](bitline_cache::FaultEvent)s for the
//!   cache to recover from (full-precharge replay on detection);
//! * [`FaultReport`] — injected / detected / replayed / silent accounting,
//!   per subarray, with graceful-degradation (fail-safe pinning) status.
//!
//! With [`FaultConfig::ecc`] armed the decorator routes every upset
//! through the (72,64) SECDED codec of `bitline-ecc` instead of the
//! binary detector: outcomes become corrected / DUE / SDC (tracked in a
//! [`ReliabilityReport`](bitline_ecc::ReliabilityReport)), latent
//! corrected-on-read errors accumulate until a background or demand scrub
//! clears them, and subarrays walk a three-stage degradation ladder
//! (correct in place → scrub-on-detect → fail-safe pin).
//!
//! # Examples
//!
//! ```
//! use bitline_cache::{AlwaysPrecharged, PrechargePolicy};
//! use bitline_faults::{FaultConfig, FaultInjectingPolicy};
//!
//! let inner = Box::new(AlwaysPrecharged::new(8));
//! let mut p = FaultInjectingPolicy::new(inner, FaultConfig::disabled(), 8);
//! // Disabled injection is fully transparent.
//! assert_eq!(p.access(3, 10), 0);
//! assert!(p.take_fault().is_none());
//! assert!(p.report().is_consistent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod injector;
mod policy;
mod report;
mod rng;
mod vdd;

pub use config::FaultConfig;
pub use injector::FaultInjector;
pub use policy::FaultInjectingPolicy;
pub use report::{FaultReport, SubarrayFaults};
pub use rng::SplitMix64;
pub use vdd::{GovernorConfig, SubarrayVdd, VddConfig, VddReport, VddStep};
