//! The fault-injecting policy decorator.

use std::cell::RefCell;
use std::rc::Rc;

use bitline_cache::{ActivityReport, FaultEvent, PrechargePolicy, ResizeRequest};

use crate::config::FaultConfig;
use crate::injector::FaultInjector;
use crate::report::FaultReport;

/// Wraps any [`PrechargePolicy`] and injects faults into its cold accesses.
///
/// Semantics (see DESIGN.md, "Fault model & recovery semantics"):
///
/// * **Warm accesses** (inner policy charged no pull-up delay) read from
///   fully precharged bitlines; their only exposure is a decay-counter bit
///   flip, which spuriously isolates the subarray and turns the access cold
///   (it pays [`FaultConfig::pullup_penalty`]).
/// * **Cold accesses** may read below sense margin with probability
///   `upset_rate × leakage_multiplier(subarray)`. A detected upset raises
///   [`FaultEvent::DetectedUpset`], which the cache turns into a
///   full-precharge replay; an undetected one raises
///   [`FaultEvent::SilentUpset`] and costs nothing (nothing noticed).
/// * **Graceful degradation**: once a subarray's detected-upset count
///   reaches `fail_safe_threshold`, the subarray is pinned back to static
///   pull-up — no further delays, flips, or upsets there, at the price of
///   full leakage (accounted in `finalize`).
///
/// With a disabled [`FaultConfig`] the decorator is fully transparent: it
/// forwards every call, consumes no randomness, and `finalize` returns the
/// inner policy's report unchanged (`name()` also forwards, so reports are
/// bit-identical to the undecorated policy).
pub struct FaultInjectingPolicy {
    inner: Box<dyn PrechargePolicy>,
    injector: FaultInjector,
    report: FaultReport,
    pending: Option<FaultEvent>,
    /// Per-subarray: cycle at which graceful degradation pinned the
    /// subarray to static pull-up (`None` while it still gates).
    pinned_at: Vec<Option<u64>>,
    sink: Option<Rc<RefCell<FaultReport>>>,
}

impl FaultInjectingPolicy {
    /// Decorates `inner`, which controls `subarrays` subarrays.
    #[must_use]
    pub fn new(
        inner: Box<dyn PrechargePolicy>,
        config: FaultConfig,
        subarrays: usize,
    ) -> FaultInjectingPolicy {
        FaultInjectingPolicy {
            inner,
            injector: FaultInjector::new(config, subarrays),
            report: FaultReport::new(subarrays),
            pending: None,
            pinned_at: vec![None; subarrays],
            sink: None,
        }
    }

    /// Also mirrors the final [`FaultReport`] into `sink` at `finalize`
    /// (same idiom as the locality recorder: the driver keeps the `Rc` and
    /// reads the report after the run).
    #[must_use]
    pub fn with_sink(mut self, sink: Rc<RefCell<FaultReport>>) -> FaultInjectingPolicy {
        self.sink = Some(sink);
        self
    }

    /// The fault counters so far.
    #[must_use]
    pub fn report(&self) -> &FaultReport {
        &self.report
    }

    /// The injector (for inspecting leakage multipliers).
    #[must_use]
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Shared fault-injection path for plain and predicted accesses.
    /// `inner_extra` is what the wrapped policy charged for this access.
    fn inject(&mut self, subarray: usize, cycle: u64, inner_extra: u32) -> u32 {
        if self.pinned_at[subarray].is_some() {
            // Statically pulled up: never delayed, never upset.
            return 0;
        }
        let cfg = *self.injector.config();
        let mut extra = inner_extra;
        let mut cold = extra > 0;
        if !cold && self.injector.draw_decay_flip() {
            // A counter bit flipped and the subarray was isolated although
            // the policy meant it precharged: the access turns cold.
            self.report.per_subarray[subarray].decay_flips += 1;
            extra += cfg.pullup_penalty;
            cold = true;
        }
        if cold && self.injector.draw_upset(subarray) {
            self.report.per_subarray[subarray].injected += 1;
            if self.injector.draw_detected() {
                self.report.per_subarray[subarray].detected += 1;
                self.report.per_subarray[subarray].replayed += 1;
                self.pending = Some(FaultEvent::DetectedUpset { retry_cycles: cfg.retry_cycles });
                if let Some(limit) = cfg.fail_safe_threshold {
                    if self.report.per_subarray[subarray].detected >= u64::from(limit) {
                        self.pinned_at[subarray] = Some(cycle);
                        self.report.per_subarray[subarray].pinned = true;
                    }
                }
            } else {
                self.report.per_subarray[subarray].silent += 1;
                self.pending = Some(FaultEvent::SilentUpset);
            }
        }
        extra
    }
}

impl PrechargePolicy for FaultInjectingPolicy {
    fn name(&self) -> String {
        // Transparent on purpose: reports compare bit-identical to the
        // undecorated policy when injection is disabled.
        self.inner.name()
    }

    fn access(&mut self, subarray: usize, cycle: u64) -> u32 {
        let inner_extra = self.inner.access(subarray, cycle);
        self.inject(subarray, cycle, inner_extra)
    }

    fn access_with_prediction(&mut self, subarray: usize, predicted: usize, cycle: u64) -> u32 {
        let inner_extra = self.inner.access_with_prediction(subarray, predicted, cycle);
        self.inject(subarray, cycle, inner_extra)
    }

    fn hint(&mut self, subarray: usize, cycle: u64) {
        self.inner.hint(subarray, cycle);
    }

    fn observe_outcome(&mut self, hit: bool) {
        self.inner.observe_outcome(hit);
    }

    fn resize_request(&mut self) -> Option<ResizeRequest> {
        self.inner.resize_request()
    }

    fn notify_resize(&mut self, active_subarrays: usize, active_way_fraction: f64, cycle: u64) {
        self.inner.notify_resize(active_subarrays, active_way_fraction, cycle);
    }

    fn take_fault(&mut self) -> Option<FaultEvent> {
        self.pending.take()
    }

    fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
        let mut activity = self.inner.finalize(end_cycle);
        // A pinned subarray burned full static leakage from its pin cycle
        // on; the inner policy does not know, so charge it here. The inner
        // pull-up time is an underestimate only over the pinned span, hence
        // the additive correction capped at the run length.
        for (s, pinned) in self.pinned_at.iter().enumerate() {
            if let (Some(cycle), Some(act)) = (pinned, activity.per_subarray.get_mut(s)) {
                let span = end_cycle.saturating_sub(*cycle) as f64;
                act.pulled_up_cycles = (act.pulled_up_cycles + span).min(end_cycle as f64);
            }
        }
        if let Some(sink) = &self.sink {
            *sink.borrow_mut() = self.report.clone();
        }
        activity
    }
}
