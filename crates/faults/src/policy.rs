//! The fault-injecting policy decorator.

use std::cell::RefCell;
use std::rc::Rc;

use bitline_cache::{ActivityReport, FaultEvent, PrechargePolicy, ResizeRequest};
use bitline_ecc::{
    classify, DegradationStage, ErrorOutcome, ReliabilityReport, ScrubEngine, CODEWORD_BITS,
};

use crate::config::FaultConfig;
use crate::injector::FaultInjector;
use crate::report::FaultReport;
use crate::vdd::{VddConfig, VddReport};

/// Wraps any [`PrechargePolicy`] and injects faults into its cold accesses.
///
/// Semantics (see DESIGN.md, "Fault model & recovery semantics"):
///
/// * **Warm accesses** (inner policy charged no pull-up delay) read from
///   fully precharged bitlines; their only exposure is a decay-counter bit
///   flip, which spuriously isolates the subarray and turns the access cold
///   (it pays [`FaultConfig::pullup_penalty`]).
/// * **Cold accesses** may read below sense margin with probability
///   `upset_rate × leakage_multiplier(subarray)`. A detected upset raises
///   [`FaultEvent::DetectedUpset`], which the cache turns into a
///   full-precharge replay; an undetected one raises
///   [`FaultEvent::SilentUpset`] and costs nothing (nothing noticed).
/// * **Graceful degradation**: once a subarray's detected-upset count
///   reaches `fail_safe_threshold`, the subarray is pinned back to static
///   pull-up — no further delays, flips, or upsets there, at the price of
///   full leakage (accounted in `finalize`).
///
/// With a disabled [`FaultConfig`] the decorator is fully transparent: it
/// forwards every call, consumes no randomness, and `finalize` returns the
/// inner policy's report unchanged (`name()` also forwards, so reports are
/// bit-identical to the undecorated policy).
pub struct FaultInjectingPolicy {
    inner: Box<dyn PrechargePolicy>,
    injector: FaultInjector,
    report: FaultReport,
    pending: Option<FaultEvent>,
    /// Per-subarray: cycle at which graceful degradation pinned the
    /// subarray to static pull-up (`None` while it still gates).
    pinned_at: Vec<Option<u64>>,
    sink: Option<Rc<RefCell<FaultReport>>>,
    /// SECDED state, present only when [`FaultConfig::ecc`] is armed.
    ecc: Option<EccState>,
    /// Low-Vdd timing-speculation state, present only when a speculative
    /// supply ladder is armed via [`FaultInjectingPolicy::with_vdd`].
    vdd: Option<VddState>,
}

/// How one injected upset resolved in the detection machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UpsetOutcome {
    /// SECDED corrected the word in the read path.
    Corrected,
    /// Detected (margin detector or DUE) and replayed against a full
    /// precharge.
    Replayed,
    /// Escaped detection: silent data corruption.
    Silent,
}

/// Mutable state of the timing-speculation layer: the ladder config, the
/// per-subarray sliding windows, and the run report.
struct VddState {
    config: VddConfig,
    report: VddReport,
    /// Speculative accesses seen in the current window, per subarray.
    window_accesses: Vec<u32>,
    /// Replays seen in the current window, per subarray.
    window_replays: Vec<u32>,
    /// Consecutive replay-free windows, per subarray (the hysteresis).
    clean_windows: Vec<u32>,
    sink: Option<Rc<RefCell<VddReport>>>,
}

/// Mutable state of the error-protection layer: the reliability counters,
/// the per-subarray latent-error population, and the background scrub
/// schedule.
struct EccState {
    reliability: ReliabilityReport,
    /// Words per subarray carrying a residual flipped bit — corrected on
    /// every read, but still in the array until a scrub or rewrite. A
    /// second upset landing on such a word compounds into a double (or
    /// triple) flip.
    latent: Vec<u32>,
    scrub: Option<ScrubEngine>,
    /// Background sweeps already credited per subarray (lazy polling).
    seen_sweeps: Vec<u64>,
    sink: Option<Rc<RefCell<ReliabilityReport>>>,
}

impl EccState {
    fn new(config: &FaultConfig, subarrays: usize) -> EccState {
        EccState {
            reliability: ReliabilityReport::new(subarrays),
            latent: vec![0; subarrays],
            scrub: config.scrub_period.map(|period| {
                ScrubEngine::new(u32::try_from(subarrays).unwrap_or(1).max(1), period)
            }),
            seen_sweeps: vec![0; subarrays],
            sink: None,
        }
    }

    /// Credits background sweeps that completed since this subarray was
    /// last touched, clearing its latent errors. Pure arithmetic on the
    /// access cycle — no RNG — so scrub-on/off runs keep identical
    /// injector draw streams.
    fn poll_background_scrub(&mut self, subarray: usize, cycle: u64) {
        let Some(engine) = &self.scrub else { return };
        let sweeps = engine.completed_sweeps(subarray as u32, cycle);
        if sweeps > self.seen_sweeps[subarray] {
            self.seen_sweeps[subarray] = sweeps;
            let cleared = self.latent[subarray];
            self.latent[subarray] = 0;
            self.reliability.per_subarray[subarray].latent_cleared += u64::from(cleared);
        }
    }

    /// Stage-1 response: a targeted scrub of the whole subarray, clearing
    /// every latent error in it.
    fn demand_scrub(&mut self, subarray: usize, words: u32) {
        let cleared = self.latent[subarray];
        self.latent[subarray] = 0;
        let sub = &mut self.reliability.per_subarray[subarray];
        sub.latent_cleared += u64::from(cleared);
        sub.demand_scrubs += 1;
        self.reliability.demand_scrub_words += u64::from(words);
    }
}

impl FaultInjectingPolicy {
    /// Decorates `inner`, which controls `subarrays` subarrays.
    #[must_use]
    pub fn new(
        inner: Box<dyn PrechargePolicy>,
        config: FaultConfig,
        subarrays: usize,
    ) -> FaultInjectingPolicy {
        let ecc = config.ecc.then(|| EccState::new(&config, subarrays));
        FaultInjectingPolicy {
            inner,
            injector: FaultInjector::new(config, subarrays),
            report: FaultReport::new(subarrays),
            pending: None,
            pinned_at: vec![None; subarrays],
            sink: None,
            ecc,
            vdd: None,
        }
    }

    /// Arms low-Vdd timing speculation with the given guardband ladder.
    /// Every cold access becomes speculative: it may mis-sense with the
    /// current ladder step's probability and then resolves through the
    /// same detect → replay machinery as a leakage upset.
    #[must_use]
    pub fn with_vdd(mut self, config: VddConfig) -> FaultInjectingPolicy {
        let subarrays = self.pinned_at.len();
        self.vdd = Some(VddState {
            report: VddReport::new(subarrays, config.steps.len()),
            window_accesses: vec![0; subarrays],
            window_replays: vec![0; subarrays],
            clean_windows: vec![0; subarrays],
            sink: None,
            config,
        });
        self
    }

    /// Also mirrors the final [`VddReport`] into `sink` at `finalize`.
    /// No-op unless a ladder is armed via [`FaultInjectingPolicy::with_vdd`].
    #[must_use]
    pub fn with_vdd_sink(mut self, sink: Rc<RefCell<VddReport>>) -> FaultInjectingPolicy {
        if let Some(vdd) = &mut self.vdd {
            vdd.sink = Some(sink);
        }
        self
    }

    /// Also mirrors the final [`FaultReport`] into `sink` at `finalize`
    /// (same idiom as the locality recorder: the driver keeps the `Rc` and
    /// reads the report after the run).
    #[must_use]
    pub fn with_sink(mut self, sink: Rc<RefCell<FaultReport>>) -> FaultInjectingPolicy {
        self.sink = Some(sink);
        self
    }

    /// Also mirrors the final [`ReliabilityReport`] into `sink` at
    /// `finalize`. No-op unless [`FaultConfig::ecc`] is armed.
    #[must_use]
    pub fn with_reliability_sink(
        mut self,
        sink: Rc<RefCell<ReliabilityReport>>,
    ) -> FaultInjectingPolicy {
        if let Some(ecc) = &mut self.ecc {
            ecc.sink = Some(sink);
        }
        self
    }

    /// The fault counters so far.
    #[must_use]
    pub fn report(&self) -> &FaultReport {
        &self.report
    }

    /// The reliability counters so far (`None` unless ECC is armed).
    #[must_use]
    pub fn reliability(&self) -> Option<&ReliabilityReport> {
        self.ecc.as_ref().map(|e| &e.reliability)
    }

    /// The timing-speculation counters so far (`None` unless a ladder is
    /// armed).
    #[must_use]
    pub fn vdd_report(&self) -> Option<&VddReport> {
        self.vdd.as_ref().map(|v| &v.report)
    }

    /// The injector (for inspecting leakage multipliers).
    #[must_use]
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Shared fault-injection path for plain and predicted accesses.
    /// `inner_extra` is what the wrapped policy charged for this access.
    fn inject(&mut self, subarray: usize, cycle: u64, inner_extra: u32) -> u32 {
        if self.pinned_at[subarray].is_some() {
            // Statically pulled up: never delayed, never upset.
            return 0;
        }
        if let Some(ecc) = &mut self.ecc {
            ecc.poll_background_scrub(subarray, cycle);
        }
        let cfg = *self.injector.config();
        let mut extra = inner_extra;
        let mut cold = extra > 0;
        if !cold && self.injector.draw_decay_flip() {
            // A counter bit flipped and the subarray was isolated although
            // the policy meant it precharged: the access turns cold.
            self.report.per_subarray[subarray].decay_flips += 1;
            extra += cfg.pullup_penalty;
            cold = true;
        }
        if cold && self.injector.draw_upset(subarray) {
            self.report.per_subarray[subarray].injected += 1;
            self.resolve_upset(subarray, cycle, &cfg);
        }
        // Timing speculation: a cold read sensed below nominal supply may
        // mis-sense independently of the leakage-upset source. A read
        // already being replayed (or corrected) resolves that event first.
        if cold && self.pending.is_none() {
            self.speculate(subarray, cycle, &cfg);
        }
        extra
    }

    /// Resolves one injected upset — leakage *or* timing, the machinery
    /// is shared: SECDED classification when the codec is armed, the
    /// binary margin detector otherwise, raising the fault event the
    /// cache turns into a full-precharge replay.
    fn resolve_upset(&mut self, subarray: usize, cycle: u64, cfg: &FaultConfig) -> UpsetOutcome {
        if cfg.ecc {
            self.classify_upset(subarray, cycle, cfg)
        } else if self.injector.draw_detected() {
            self.report.per_subarray[subarray].detected += 1;
            self.report.per_subarray[subarray].replayed += 1;
            self.pending = Some(FaultEvent::DetectedUpset { retry_cycles: cfg.retry_cycles });
            if let Some(limit) = cfg.fail_safe_threshold {
                if self.report.per_subarray[subarray].detected >= u64::from(limit) {
                    self.pinned_at[subarray] = Some(cycle);
                    self.report.per_subarray[subarray].pinned = true;
                }
            }
            UpsetOutcome::Replayed
        } else {
            self.report.per_subarray[subarray].silent += 1;
            self.pending = Some(FaultEvent::SilentUpset);
            UpsetOutcome::Silent
        }
    }

    /// One speculative (cold, below-guardband) read: census the access
    /// at the subarray's current ladder step, maybe mis-sense, resolve
    /// through the shared detect → replay path, and run the governor's
    /// sliding window.
    fn speculate(&mut self, subarray: usize, cycle: u64, cfg: &FaultConfig) {
        // Taken out of `self` so `resolve_upset` can borrow the rest.
        let Some(mut vdd) = self.vdd.take() else { return };
        let step = usize::from(vdd.report.per_subarray[subarray].step);
        vdd.report.step_accesses[step] += 1;
        let p = vdd.config.steps[step].upset_probability;
        let mut replayed = false;
        if self.injector.draw_timing_upset(subarray, p) {
            vdd.report.upsets += 1;
            self.report.per_subarray[subarray].injected += 1;
            match self.resolve_upset(subarray, cycle, cfg) {
                UpsetOutcome::Corrected => vdd.report.corrected += 1,
                UpsetOutcome::Replayed => {
                    vdd.report.replays += 1;
                    replayed = true;
                }
                UpsetOutcome::Silent => vdd.report.sdc += 1,
            }
        }
        if let Some(g) = vdd.config.governor {
            vdd.window_accesses[subarray] += 1;
            if replayed {
                vdd.window_replays[subarray] += 1;
            }
            if vdd.window_accesses[subarray] >= g.window {
                let sub = &mut vdd.report.per_subarray[subarray];
                let top = vdd.config.steps.len() - 1;
                let replays = vdd.window_replays[subarray];
                if !sub.pinned {
                    if replays >= g.escalate_replays {
                        // Noisy window: one guardband step toward nominal.
                        // Repeated escalation means the subarray cannot
                        // hold a speculative step: pin it to nominal.
                        sub.step = (usize::from(sub.step) + 1).min(top) as u8;
                        sub.escalations += 1;
                        vdd.clean_windows[subarray] = 0;
                        if sub.escalations >= u64::from(g.max_escalations) {
                            sub.pinned = true;
                            sub.step = top as u8;
                        }
                    } else if replays == 0 {
                        // Hysteresis: only a run of clean windows relaxes
                        // the guardband back toward aggressive.
                        vdd.clean_windows[subarray] += 1;
                        if vdd.clean_windows[subarray] >= g.clean_windows_to_relax && sub.step > 0 {
                            sub.step -= 1;
                            sub.deescalations += 1;
                            vdd.clean_windows[subarray] = 0;
                        }
                    } else {
                        vdd.clean_windows[subarray] = 0;
                    }
                }
                vdd.window_accesses[subarray] = 0;
                vdd.window_replays[subarray] = 0;
            }
        }
        self.vdd = Some(vdd);
    }

    /// ECC path for one injected upset: build the flip pattern, run a
    /// real word through the SECDED codec, account the outcome, and walk
    /// the degradation ladder.
    fn classify_upset(&mut self, subarray: usize, cycle: u64, cfg: &FaultConfig) -> UpsetOutcome {
        let ecc = self.ecc.as_mut().expect("classify_upset requires armed ECC state");
        // Flip pattern: one fresh flip, plus the adjacent column for a
        // spatially-correlated multi-bit upset, plus the word's existing
        // latent flip if this upset landed on a previously-damaged word.
        let multi = self.injector.draw_multi_bit();
        let latent_hit = self.injector.draw_latent_hit(ecc.latent[subarray]);
        let data = self.injector.draw_data_word();
        let first = self.injector.draw_bit_position(CODEWORD_BITS);
        let mut flips = [0u32; 3];
        flips[0] = first;
        let mut n = 1;
        if multi {
            flips[n] = (first + 1) % CODEWORD_BITS;
            n += 1;
        }
        if latent_hit {
            let mut bit = self.injector.draw_bit_position(CODEWORD_BITS);
            while flips[..n].contains(&bit) {
                bit = (bit + 1) % CODEWORD_BITS;
            }
            flips[n] = bit;
            n += 1;
        }
        let outcome = classify(data, &flips[..n]);
        let detected = outcome != ErrorOutcome::Silent;
        {
            let rel = &mut ecc.reliability.per_subarray[subarray];
            let fr = &mut self.report.per_subarray[subarray];
            match outcome {
                ErrorOutcome::Corrected => {
                    // Corrected in the read path; the array cell still
                    // holds the flipped bit until a scrub rewrites it.
                    rel.corrected += 1;
                    fr.detected += 1;
                    ecc.latent[subarray] = ecc.latent[subarray].saturating_add(1);
                    self.pending = Some(FaultEvent::CorrectedUpset {
                        correction_cycles: cfg.correction_cycles,
                    });
                }
                ErrorOutcome::DetectedUncorrectable => {
                    // A DUE: the word is lost to the codec, so the cache
                    // replays against a fresh precharge (refetching the
                    // line rewrites the word, clearing its latent damage).
                    rel.due += 1;
                    fr.detected += 1;
                    fr.replayed += 1;
                    if latent_hit {
                        ecc.latent[subarray] = ecc.latent[subarray].saturating_sub(1);
                    }
                    self.pending =
                        Some(FaultEvent::DetectedUpset { retry_cycles: cfg.retry_cycles });
                }
                ErrorOutcome::Silent => {
                    // Miscorrection: corrupt data delivered (and written
                    // back) without a flag. The word stays damaged, but it
                    // was already counted latent by the earlier hit.
                    rel.sdc += 1;
                    fr.silent += 1;
                    self.pending = Some(FaultEvent::SilentUpset);
                }
            }
        }
        // Degradation ladder. Stage 1 (scrub-on-detect): once codec-visible
        // errors cluster, every further detected error triggers a targeted
        // scrub — including the error that crossed the threshold.
        let stage = ecc.reliability.per_subarray[subarray].stage;
        let errors = ecc.reliability.per_subarray[subarray].corrected
            + ecc.reliability.per_subarray[subarray].due;
        if stage == DegradationStage::CorrectInPlace
            && cfg.scrub_on_detect_threshold.is_some_and(|t| errors >= u64::from(t))
        {
            ecc.reliability.per_subarray[subarray].stage = DegradationStage::ScrubOnDetect;
        }
        if detected
            && ecc.reliability.per_subarray[subarray].stage >= DegradationStage::ScrubOnDetect
        {
            ecc.demand_scrub(subarray, cfg.subarray_words);
        }
        // Stage 2 (fail-safe) pins on DUEs: corrected singles are business
        // as usual for a protected array, but uncorrectable losses mean
        // the subarray is past what the codec can absorb.
        if let Some(limit) = cfg.fail_safe_threshold {
            if ecc.reliability.per_subarray[subarray].due >= u64::from(limit) {
                ecc.reliability.per_subarray[subarray].stage = DegradationStage::FailSafe;
                self.pinned_at[subarray] = Some(cycle);
                self.report.per_subarray[subarray].pinned = true;
            }
        }
        match outcome {
            ErrorOutcome::Corrected => UpsetOutcome::Corrected,
            ErrorOutcome::DetectedUncorrectable => UpsetOutcome::Replayed,
            ErrorOutcome::Silent => UpsetOutcome::Silent,
        }
    }
}

impl PrechargePolicy for FaultInjectingPolicy {
    fn name(&self) -> String {
        // Transparent on purpose: reports compare bit-identical to the
        // undecorated policy when injection is disabled.
        self.inner.name()
    }

    fn access(&mut self, subarray: usize, cycle: u64) -> u32 {
        let inner_extra = self.inner.access(subarray, cycle);
        self.inject(subarray, cycle, inner_extra)
    }

    fn access_with_prediction(&mut self, subarray: usize, predicted: usize, cycle: u64) -> u32 {
        let inner_extra = self.inner.access_with_prediction(subarray, predicted, cycle);
        self.inject(subarray, cycle, inner_extra)
    }

    fn hint(&mut self, subarray: usize, cycle: u64) {
        self.inner.hint(subarray, cycle);
    }

    fn observe_outcome(&mut self, hit: bool) {
        self.inner.observe_outcome(hit);
    }

    fn resize_request(&mut self) -> Option<ResizeRequest> {
        self.inner.resize_request()
    }

    fn notify_resize(&mut self, active_subarrays: usize, active_way_fraction: f64, cycle: u64) {
        self.inner.notify_resize(active_subarrays, active_way_fraction, cycle);
    }

    fn take_fault(&mut self) -> Option<FaultEvent> {
        self.pending.take()
    }

    fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
        let mut activity = self.inner.finalize(end_cycle);
        // A pinned subarray burned full static leakage from its pin cycle
        // on; the inner policy does not know, so charge it here. The inner
        // pull-up time is an underestimate only over the pinned span, hence
        // the additive correction capped at the run length.
        for (s, pinned) in self.pinned_at.iter().enumerate() {
            if let (Some(cycle), Some(act)) = (pinned, activity.per_subarray.get_mut(s)) {
                let span = end_cycle.saturating_sub(*cycle) as f64;
                act.pulled_up_cycles = (act.pulled_up_cycles + span).min(end_cycle as f64);
            }
        }
        if let Some(ecc) = &mut self.ecc {
            ecc.reliability.end_cycle = end_cycle;
            ecc.reliability.pinned_residency_cycles =
                self.pinned_at.iter().flatten().map(|&cycle| end_cycle.saturating_sub(cycle)).sum();
            if let Some(engine) = &ecc.scrub {
                ecc.reliability.background_scrub_words =
                    engine.total_scrub_words(end_cycle, self.injector.config().subarray_words);
            }
            if let Some(sink) = &ecc.sink {
                *sink.borrow_mut() = ecc.reliability.clone();
            }
        }
        if let Some(vdd) = &self.vdd {
            if let Some(sink) = &vdd.sink {
                *sink.borrow_mut() = vdd.report.clone();
            }
        }
        if let Some(sink) = &self.sink {
            *sink.borrow_mut() = self.report.clone();
        }
        activity
    }
}
