//! Fault accounting: what was injected, what was caught, what slipped
//! through.

use serde::{Deserialize, Serialize};

/// Fault counters for one subarray.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubarrayFaults {
    /// Upsets injected (reads that fell below sense margin).
    pub injected: u64,
    /// Upsets the sense-margin detector caught.
    pub detected: u64,
    /// Upsets that escaped detection (silent data corruption).
    pub silent: u64,
    /// Reads replayed against a freshly precharged subarray (one per
    /// detected upset).
    pub replayed: u64,
    /// Decay-counter bit flips (spurious isolation events).
    pub decay_flips: u64,
    /// Whether graceful degradation pinned this subarray back to static
    /// pull-up.
    pub pinned: bool,
}

/// Whole-run fault summary, per subarray plus totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Per-subarray counters.
    pub per_subarray: Vec<SubarrayFaults>,
}

impl FaultReport {
    /// An empty report over `subarrays` subarrays.
    #[must_use]
    pub fn new(subarrays: usize) -> FaultReport {
        FaultReport { per_subarray: vec![SubarrayFaults::default(); subarrays] }
    }

    /// Total upsets injected.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.injected).sum()
    }

    /// Total upsets detected.
    #[must_use]
    pub fn detected(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.detected).sum()
    }

    /// Total silent upsets.
    #[must_use]
    pub fn silent(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.silent).sum()
    }

    /// Total replayed reads.
    #[must_use]
    pub fn replayed(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.replayed).sum()
    }

    /// Total decay-counter flips.
    #[must_use]
    pub fn decay_flips(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.decay_flips).sum()
    }

    /// Subarrays pinned back to static pull-up by graceful degradation.
    #[must_use]
    pub fn degraded_subarrays(&self) -> usize {
        self.per_subarray.iter().filter(|s| s.pinned).count()
    }

    /// Counter invariant: every injected upset is either detected or
    /// silent, and only detected upsets are ever replayed. Without ECC
    /// every detected upset replays; with ECC, corrected singles complete
    /// in the read path and only DUEs replay, so `replayed <= detected`.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.per_subarray
            .iter()
            .all(|s| s.detected + s.silent == s.injected && s.replayed <= s.detected)
    }

    /// Accumulates this report's totals into the global metrics registry
    /// under `faults.{cache}.*` (e.g. `faults.d.detected`). Called once
    /// per completed run by the simulator, so the counters stay semantic —
    /// they track finished physics, not in-flight injector state, and are
    /// therefore identical across job counts.
    pub fn record_metrics(&self, cache: &str) {
        let registry = bitline_obs::registry();
        registry.counter(&format!("faults.{cache}.injected")).add(self.injected());
        registry.counter(&format!("faults.{cache}.detected")).add(self.detected());
        registry.counter(&format!("faults.{cache}.replayed")).add(self.replayed());
        registry.counter(&format!("faults.{cache}.silent")).add(self.silent());
        registry.counter(&format!("faults.{cache}.decay_flips")).add(self.decay_flips());
        registry
            .counter(&format!("faults.{cache}.degraded_subarrays"))
            .add(u64::try_from(self.degraded_subarrays()).unwrap_or(u64::MAX));
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "injected {}  detected {}  replayed {}  silent {}  decay flips {}  degraded {}/{} subarrays",
            self.injected(),
            self.detected(),
            self.replayed(),
            self.silent(),
            self.decay_flips(),
            self.degraded_subarrays(),
            self.per_subarray.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_subarrays() {
        let mut r = FaultReport::new(2);
        r.per_subarray[0].injected = 3;
        r.per_subarray[0].detected = 2;
        r.per_subarray[0].silent = 1;
        r.per_subarray[0].replayed = 2;
        r.per_subarray[1].injected = 1;
        r.per_subarray[1].detected = 1;
        r.per_subarray[1].replayed = 1;
        assert_eq!(r.injected(), 4);
        assert_eq!(r.detected(), 3);
        assert_eq!(r.silent(), 1);
        assert!(r.is_consistent());
    }

    #[test]
    fn inconsistency_is_caught() {
        let mut r = FaultReport::new(1);
        r.per_subarray[0].injected = 2;
        r.per_subarray[0].detected = 1;
        // silent missing
        assert!(!r.is_consistent());
    }

    #[test]
    fn record_metrics_accumulates_totals() {
        let mut r = FaultReport::new(2);
        r.per_subarray[0].injected = 3;
        r.per_subarray[0].detected = 2;
        r.per_subarray[0].silent = 1;
        r.per_subarray[0].replayed = 2;
        r.per_subarray[1].pinned = true;
        let before = bitline_obs::registry().snapshot();
        r.record_metrics("test_report");
        let after = bitline_obs::registry().snapshot();
        let delta =
            |name: &str| after.counters[name] - before.counters.get(name).copied().unwrap_or(0);
        assert_eq!(delta("faults.test_report.injected"), 3);
        assert_eq!(delta("faults.test_report.detected"), 2);
        assert_eq!(delta("faults.test_report.replayed"), 2);
        assert_eq!(delta("faults.test_report.silent"), 1);
        assert_eq!(delta("faults.test_report.degraded_subarrays"), 1);
    }

    #[test]
    fn summary_mentions_degradation() {
        let mut r = FaultReport::new(4);
        r.per_subarray[2].pinned = true;
        assert!(r.summary().contains("degraded 1/4"));
    }
}
