//! Dynamic instruction records for the trace-driven simulators.
//!
//! The out-of-order core in `bitline-cpu` is trace-driven: a
//! [`TraceSource`] feeds it a stream of [`Instr`] records carrying
//! everything the timing model needs — program counter, operation class,
//! register dependences, resolved memory address (plus the base-register
//! value, which the predecoding heuristic of the paper's Section 6.3 uses),
//! and resolved branch direction/target.
//!
//! # Examples
//!
//! ```
//! use bitline_trace::{Instr, InstrKind, MemRef, TraceSource};
//!
//! struct Nops(u64);
//! impl TraceSource for Nops {
//!     fn next_instr(&mut self) -> Instr {
//!         let pc = self.0;
//!         self.0 += 4;
//!         Instr::new(pc, InstrKind::IntAlu)
//!     }
//! }
//!
//! let mut t = Nops(0x1000);
//! assert_eq!(t.next_instr().pc, 0x1000);
//! assert_eq!(t.next_instr().pc, 0x1004);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod columnar;

use serde::{Deserialize, Serialize};

/// A logical (architectural) register name.
///
/// The synthetic ISA has 64 integer/float registers, which is enough to
/// express the dependence patterns the issue logic cares about.
pub type Reg = u8;

/// Number of logical registers in the synthetic ISA.
pub const NUM_REGS: usize = 64;

/// Operation class of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Multi-cycle integer multiply/divide.
    IntMul,
    /// Floating-point operation.
    FpAlu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (direction in [`Instr::branch`]).
    Branch,
    /// Unconditional jump / call / return.
    Jump,
}

impl InstrKind {
    /// True for loads and stores.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, InstrKind::Load | InstrKind::Store)
    }

    /// True for control-flow instructions.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(self, InstrKind::Branch | InstrKind::Jump)
    }
}

/// A resolved memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Effective (virtual) address of the access.
    pub addr: u64,
    /// Value of the base register before displacement addition.
    ///
    /// Predecoding (Section 6.3 of the paper) predicts the accessed
    /// subarray from this value as soon as the base register is read; the
    /// prediction is correct exactly when `addr` and `base` select the same
    /// subarray.
    pub base: u64,
    /// Access size in bytes.
    pub size: u8,
}

/// Resolved outcome of a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch is taken.
    pub taken: bool,
    /// Target address if taken.
    pub target: u64,
}

/// One dynamic instruction as delivered by a [`TraceSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instr {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class.
    pub kind: InstrKind,
    /// Destination register, if the instruction writes one.
    pub dest: Option<Reg>,
    /// Source registers (up to two).
    pub srcs: [Option<Reg>; 2],
    /// Memory reference for loads/stores.
    pub mem: Option<MemRef>,
    /// Branch outcome for control instructions.
    pub branch: Option<BranchInfo>,
}

impl Instr {
    /// A bare instruction of the given class with no operands.
    ///
    /// Builder-style helpers ([`Instr::with_dest`], [`Instr::with_srcs`],
    /// [`Instr::with_mem`], [`Instr::with_branch`]) fill in the rest.
    #[must_use]
    pub fn new(pc: u64, kind: InstrKind) -> Instr {
        Instr { pc, kind, dest: None, srcs: [None, None], mem: None, branch: None }
    }

    /// Sets the destination register.
    #[must_use]
    pub fn with_dest(mut self, dest: Reg) -> Instr {
        self.dest = Some(dest);
        self
    }

    /// Sets up to two source registers.
    #[must_use]
    pub fn with_srcs(mut self, a: Option<Reg>, b: Option<Reg>) -> Instr {
        self.srcs = [a, b];
        self
    }

    /// Attaches a memory reference.
    #[must_use]
    pub fn with_mem(mut self, mem: MemRef) -> Instr {
        self.mem = Some(mem);
        self
    }

    /// Attaches a branch outcome.
    #[must_use]
    pub fn with_branch(mut self, branch: BranchInfo) -> Instr {
        self.branch = Some(branch);
        self
    }

    /// Fall-through program counter (fixed 4-byte encoding).
    #[must_use]
    pub fn next_pc(&self) -> u64 {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.pc + 4,
        }
    }
}

/// A source of dynamic instructions.
///
/// Sources are infinite: simulators decide how many instructions to
/// consume. Implementations must be deterministic for a fixed seed so
/// experiments are reproducible.
pub trait TraceSource {
    /// Produces the next dynamic instruction.
    fn next_instr(&mut self) -> Instr;

    /// Human-readable name (benchmark name for workloads).
    fn name(&self) -> &str {
        "anonymous"
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_instr(&mut self) -> Instr {
        (**self).next_instr()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A replayable in-memory trace, useful in tests.
///
/// # Examples
///
/// ```
/// use bitline_trace::{Instr, InstrKind, ReplayTrace, TraceSource};
///
/// let mut t = ReplayTrace::new(vec![Instr::new(0, InstrKind::IntAlu)]);
/// assert_eq!(t.next_instr().pc, 0);
/// // Wraps around.
/// assert_eq!(t.next_instr().pc, 0);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    instrs: Vec<Instr>,
    pos: usize,
}

impl ReplayTrace {
    /// Wraps a vector of instructions into a cyclic trace.
    ///
    /// # Panics
    ///
    /// Panics if `instrs` is empty.
    #[must_use]
    pub fn new(instrs: Vec<Instr>) -> ReplayTrace {
        assert!(!instrs.is_empty(), "replay trace cannot be empty");
        ReplayTrace { instrs, pos: 0 }
    }

    /// Number of distinct instructions before the trace repeats.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Always false (construction rejects empty traces).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TraceSource for ReplayTrace {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos];
        self.pos = (self.pos + 1) % self.instrs.len();
        i
    }

    fn name(&self) -> &str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pc_follows_taken_branches() {
        let b =
            Instr::new(100, InstrKind::Branch).with_branch(BranchInfo { taken: true, target: 64 });
        assert_eq!(b.next_pc(), 64);
        let n =
            Instr::new(100, InstrKind::Branch).with_branch(BranchInfo { taken: false, target: 64 });
        assert_eq!(n.next_pc(), 104);
        let plain = Instr::new(100, InstrKind::IntAlu);
        assert_eq!(plain.next_pc(), 104);
    }

    #[test]
    fn kind_classification() {
        assert!(InstrKind::Load.is_mem());
        assert!(InstrKind::Store.is_mem());
        assert!(!InstrKind::Branch.is_mem());
        assert!(InstrKind::Branch.is_control());
        assert!(InstrKind::Jump.is_control());
        assert!(!InstrKind::FpAlu.is_control());
    }

    #[test]
    fn replay_wraps_and_reports_len() {
        let mut t = ReplayTrace::new(vec![
            Instr::new(0, InstrKind::IntAlu),
            Instr::new(4, InstrKind::Load),
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.next_instr().pc, 0);
        assert_eq!(t.next_instr().pc, 4);
        assert_eq!(t.next_instr().pc, 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn replay_rejects_empty() {
        let _ = ReplayTrace::new(vec![]);
    }

    #[test]
    fn builder_composes() {
        let i = Instr::new(8, InstrKind::Load)
            .with_dest(3)
            .with_srcs(Some(1), None)
            .with_mem(MemRef { addr: 0x1008, base: 0x1000, size: 8 });
        assert_eq!(i.dest, Some(3));
        assert_eq!(i.srcs, [Some(1), None]);
        assert_eq!(i.mem.unwrap().base, 0x1000);
    }
}
