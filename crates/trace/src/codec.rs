//! Plain-text trace serialisation.
//!
//! One instruction per line, in a compact, diff-friendly format:
//!
//! ```text
//! 400000 L d=8 s=1 m=10001008:10001000:8
//! 400004 B s=3 b=T:400010
//! ```
//!
//! Useful for capturing a workload once and replaying it across policy
//! configurations, or for inspecting generator output with ordinary text
//! tools.

use std::io::{self, BufRead, Write};

use crate::{BranchInfo, Instr, InstrKind, MemRef, TraceSource};

fn kind_code(kind: InstrKind) -> char {
    match kind {
        InstrKind::IntAlu => 'A',
        InstrKind::IntMul => 'M',
        InstrKind::FpAlu => 'F',
        InstrKind::Load => 'L',
        InstrKind::Store => 'S',
        InstrKind::Branch => 'B',
        InstrKind::Jump => 'J',
    }
}

fn kind_from_code(c: char) -> Option<InstrKind> {
    Some(match c {
        'A' => InstrKind::IntAlu,
        'M' => InstrKind::IntMul,
        'F' => InstrKind::FpAlu,
        'L' => InstrKind::Load,
        'S' => InstrKind::Store,
        'B' => InstrKind::Branch,
        'J' => InstrKind::Jump,
        _ => return None,
    })
}

/// Writes one instruction as a text line.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_instr<W: Write>(w: &mut W, i: &Instr) -> io::Result<()> {
    write!(w, "{:x} {}", i.pc, kind_code(i.kind))?;
    if let Some(d) = i.dest {
        write!(w, " d={d}")?;
    }
    match i.srcs {
        [Some(a), Some(b)] => write!(w, " s={a},{b}")?,
        [Some(a), None] => write!(w, " s={a}")?,
        [None, Some(b)] => write!(w, " s=,{b}")?,
        [None, None] => {}
    }
    if let Some(m) = i.mem {
        write!(w, " m={:x}:{:x}:{}", m.addr, m.base, m.size)?;
    }
    if let Some(b) = i.branch {
        write!(w, " b={}:{:x}", if b.taken { 'T' } else { 'N' }, b.target)?;
    }
    writeln!(w)
}

/// Captures `count` instructions from a source into a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn capture<W: Write>(source: &mut dyn TraceSource, count: u64, w: &mut W) -> io::Result<()> {
    for _ in 0..count {
        write_instr(w, &source.next_instr())?;
    }
    Ok(())
}

fn bad(line_no: usize, msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("trace line {line_no}: {msg}"))
}

/// Parses one trace line.
///
/// # Errors
///
/// Returns `InvalidData` with the line number on malformed input.
pub fn parse_instr(line: &str, line_no: usize) -> io::Result<Instr> {
    let mut parts = line.split_whitespace();
    let pc = u64::from_str_radix(parts.next().ok_or_else(|| bad(line_no, "missing pc"))?, 16)
        .map_err(|_| bad(line_no, "bad pc"))?;
    let kind_str = parts.next().ok_or_else(|| bad(line_no, "missing kind"))?;
    let kind = kind_str
        .chars()
        .next()
        .and_then(kind_from_code)
        .ok_or_else(|| bad(line_no, "unknown kind"))?;
    let mut instr = Instr::new(pc, kind);
    for field in parts {
        let (key, value) =
            field.split_once('=').ok_or_else(|| bad(line_no, "field without `=`"))?;
        match key {
            "d" => {
                instr.dest = Some(value.parse().map_err(|_| bad(line_no, "bad dest register"))?);
            }
            "s" => {
                let mut it = value.split(',');
                let a = it.next().unwrap_or("");
                let b = it.next().unwrap_or("");
                let parse = |t: &str| -> io::Result<Option<u8>> {
                    if t.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(t.parse().map_err(|_| bad(line_no, "bad src register"))?))
                    }
                };
                instr.srcs = [parse(a)?, parse(b)?];
            }
            "m" => {
                let mut it = value.split(':');
                let addr = u64::from_str_radix(it.next().unwrap_or(""), 16)
                    .map_err(|_| bad(line_no, "bad mem addr"))?;
                let base = u64::from_str_radix(it.next().unwrap_or(""), 16)
                    .map_err(|_| bad(line_no, "bad mem base"))?;
                let size =
                    it.next().unwrap_or("8").parse().map_err(|_| bad(line_no, "bad mem size"))?;
                instr.mem = Some(MemRef { addr, base, size });
            }
            "b" => {
                let (t, target) =
                    value.split_once(':').ok_or_else(|| bad(line_no, "bad branch field"))?;
                let taken = match t {
                    "T" => true,
                    "N" => false,
                    _ => return Err(bad(line_no, "branch direction must be T or N")),
                };
                let target = u64::from_str_radix(target, 16)
                    .map_err(|_| bad(line_no, "bad branch target"))?;
                instr.branch = Some(BranchInfo { taken, target });
            }
            _ => return Err(bad(line_no, "unknown field")),
        }
    }
    Ok(instr)
}

/// Reads a whole trace from a reader.
///
/// # Errors
///
/// Returns `InvalidData` on malformed lines and propagates I/O errors.
pub fn read_trace<R: BufRead>(r: R) -> io::Result<Vec<Instr>> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_instr(trimmed, idx + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplayTrace;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::new(0x40_0000, InstrKind::IntAlu).with_dest(8).with_srcs(Some(1), Some(2)),
            Instr::new(0x40_0004, InstrKind::Load)
                .with_dest(9)
                .with_srcs(Some(8), None)
                .with_mem(MemRef { addr: 0x1000_1008, base: 0x1000_1000, size: 8 }),
            Instr::new(0x40_0008, InstrKind::Branch)
                .with_srcs(Some(9), None)
                .with_branch(BranchInfo { taken: true, target: 0x40_0000 }),
            Instr::new(0x40_000c, InstrKind::Jump)
                .with_branch(BranchInfo { taken: true, target: 0x40_1000 }),
            Instr::new(0x40_1000, InstrKind::Store).with_srcs(Some(1), Some(2)).with_mem(MemRef {
                addr: 0x1000_2000,
                base: 0x1000_2000,
                size: 8,
            }),
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        let instrs = sample();
        let mut buf = Vec::new();
        for i in &instrs {
            write_instr(&mut buf, i).unwrap();
        }
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, instrs);
    }

    #[test]
    fn capture_writes_the_requested_count() {
        let mut t = ReplayTrace::new(sample());
        let mut buf = Vec::new();
        capture(&mut t, 12, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.len(), 12);
        assert_eq!(back[0], sample()[0]);
        assert_eq!(back[5], sample()[0], "wraps after 5 instructions");
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# a comment\n\n400000 A d=3\n";
        let back = read_trace(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].dest, Some(3));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "400000 A\nnot-a-pc A\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_unknown_kind_and_fields() {
        assert!(parse_instr("400000 Z", 1).is_err());
        assert!(parse_instr("400000 A q=1", 1).is_err());
        assert!(parse_instr("400000 B b=X:4", 1).is_err());
    }

    #[test]
    fn synthetic_workloads_round_trip() {
        use bitline_trace_test_helpers::gcc_slice;
        let instrs = gcc_slice();
        let mut buf = Vec::new();
        for i in &instrs {
            write_instr(&mut buf, i).unwrap();
        }
        assert_eq!(read_trace(&buf[..]).unwrap(), instrs);
    }

    /// Minimal stand-in for a workload sample without a cyclic dev-dep on
    /// `bitline-workloads`.
    mod bitline_trace_test_helpers {
        use super::super::*;
        use crate::Instr;

        pub fn gcc_slice() -> Vec<Instr> {
            // A mix with awkward values: zero registers, max registers,
            // huge addresses.
            vec![
                Instr::new(0, InstrKind::IntAlu).with_dest(0),
                Instr::new(u64::MAX - 3, InstrKind::Load).with_dest(63).with_mem(MemRef {
                    addr: u64::MAX - 8,
                    base: 0,
                    size: 8,
                }),
                Instr::new(4, InstrKind::Branch)
                    .with_branch(BranchInfo { taken: false, target: 0 }),
            ]
        }
    }
}
