//! Columnar, bit-width-reduced instruction segments.
//!
//! A [`Segment`] holds a fixed run of instructions in struct-of-arrays
//! form, sized for sharing: a full [`Instr`] is ~56 bytes, while the
//! columnar encoding averages ~12–14 bytes per instruction on the
//! synthetic suite (meta byte + three register bytes + a 4-byte pc
//! delta, with memory and branch payloads in side columns that only
//! their instructions pay for). Segments are immutable once built, so
//! concurrent readers share them by reference count instead of copying
//! — see `bitline-exec`'s trace store.
//!
//! The encoding is *exact*: decoding reproduces the original [`Instr`]
//! stream bit-for-bit (pinned by round-trip tests, including pathological
//! values that overflow every delta column and fall back to escape
//! lists).
//!
//! Layout per instruction:
//!
//! - `meta` (1 B): instruction kind in the low 3 bits, presence flags
//!   for dest/src0/src1/mem/branch plus the branch-taken bit above.
//! - `regs` (3 B): dest, src0, src1 register names (meaningful only when
//!   the corresponding flag is set).
//! - `pc_delta` (4 B): pc relative to the previous instruction's pc
//!   (wrapping); [`ESCAPE`] diverts to a full-width escape list.
//! - memory side columns (13 B, loads/stores only): 8-byte address, a
//!   4-byte base-relative-to-address delta (escaped when wide), and the
//!   access size byte.
//! - branch side columns (4 B, control only): target relative to pc
//!   (escaped when wide). The taken bit rides in `meta`.
//!
//! Decoding is strictly sequential — exactly how trace cursors consume
//! streams — so side columns need no per-row index: a [`SegmentCursor`]
//! carries running positions for every column.
//!
//! # Examples
//!
//! ```
//! use bitline_trace::columnar::{SegmentBuilder, SegmentCursor};
//! use bitline_trace::{Instr, InstrKind};
//!
//! let mut b = SegmentBuilder::new();
//! b.push(&Instr::new(0x1000, InstrKind::IntAlu).with_dest(3));
//! b.push(&Instr::new(0x1004, InstrKind::Jump));
//! let seg = b.finish_segment();
//!
//! let mut cur = SegmentCursor::new();
//! let mut prev_pc = 0;
//! assert_eq!(seg.decode(&mut cur, &mut prev_pc).unwrap().pc, 0x1000);
//! assert_eq!(seg.decode(&mut cur, &mut prev_pc).unwrap().pc, 0x1004);
//! assert!(seg.decode(&mut cur, &mut prev_pc).is_none());
//! ```

use crate::{BranchInfo, Instr, InstrKind, MemRef};

/// Delta-column sentinel: the real value lives in the escape list.
const ESCAPE: i32 = i32::MIN;

mod meta {
    /// Low three bits: [`super::InstrKind`] code.
    pub const KIND_MASK: u8 = 0b111;
    pub const HAS_DEST: u8 = 1 << 3;
    pub const HAS_SRC0: u8 = 1 << 4;
    pub const HAS_SRC1: u8 = 1 << 5;
    pub const HAS_MEM: u8 = 1 << 6;
    /// Presence of branch info; the direction bit lives in the branch
    /// side column (one byte per branch, not per instruction).
    pub const HAS_BRANCH: u8 = 1 << 7;
}

fn kind_code(kind: InstrKind) -> u8 {
    match kind {
        InstrKind::IntAlu => 0,
        InstrKind::IntMul => 1,
        InstrKind::FpAlu => 2,
        InstrKind::Load => 3,
        InstrKind::Store => 4,
        InstrKind::Branch => 5,
        InstrKind::Jump => 6,
    }
}

fn kind_from_code(code: u8) -> InstrKind {
    match code {
        0 => InstrKind::IntAlu,
        1 => InstrKind::IntMul,
        2 => InstrKind::FpAlu,
        3 => InstrKind::Load,
        4 => InstrKind::Store,
        5 => InstrKind::Branch,
        6 => InstrKind::Jump,
        _ => unreachable!("corrupt segment meta byte"),
    }
}

/// A delta that fits the narrow column, or the escape sentinel plus a
/// push onto the wide list.
fn encode_delta(value: u64, base: u64, escapes: &mut Vec<u64>) -> i32 {
    let delta = value.wrapping_sub(base) as i64;
    match i32::try_from(delta) {
        Ok(d) if d != ESCAPE => d,
        _ => {
            escapes.push(value);
            ESCAPE
        }
    }
}

fn decode_delta(delta: i32, base: u64, escapes: &[u64], escape_idx: &mut usize) -> u64 {
    if delta == ESCAPE {
        let v = escapes[*escape_idx];
        *escape_idx += 1;
        v
    } else {
        base.wrapping_add(delta as i64 as u64)
    }
}

/// An immutable columnar run of instructions.
///
/// Built by [`SegmentBuilder`], decoded sequentially via
/// [`Segment::decode`]. All columns are boxed slices: no spare capacity,
/// no mutation after construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    meta: Box<[u8]>,
    regs: Box<[u8]>,
    pc_delta: Box<[i32]>,
    pc_escape: Box<[u64]>,
    mem_addr: Box<[u64]>,
    mem_base_delta: Box<[i32]>,
    mem_base_escape: Box<[u64]>,
    mem_size: Box<[u8]>,
    br_taken: Box<[u8]>,
    br_target_delta: Box<[i32]>,
    br_target_escape: Box<[u64]>,
}

impl Segment {
    /// Number of instructions in the segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when the segment holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Heap bytes held by the columns (the footprint shared between
    /// cursors; an equivalent `Vec<Instr>` costs `len * size_of::<Instr>()`).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.meta.len()
            + self.regs.len()
            + 4 * self.pc_delta.len()
            + 8 * self.pc_escape.len()
            + 8 * self.mem_addr.len()
            + 4 * self.mem_base_delta.len()
            + 8 * self.mem_base_escape.len()
            + self.mem_size.len()
            + self.br_taken.len()
            + 4 * self.br_target_delta.len()
            + 8 * self.br_target_escape.len()
    }

    /// Decodes the instruction at the cursor, advancing it; `None` at the
    /// end of the segment.
    ///
    /// `prev_pc` is the pc of the previously decoded instruction and must
    /// be threaded across segments in stream order (starting from 0),
    /// mirroring the builder's encoding state.
    pub fn decode(&self, cur: &mut SegmentCursor, prev_pc: &mut u64) -> Option<Instr> {
        let i = cur.pos;
        if i >= self.meta.len() {
            return None;
        }
        cur.pos += 1;
        let m = self.meta[i];
        let kind = kind_from_code(m & meta::KIND_MASK);
        let pc = decode_delta(self.pc_delta[i], *prev_pc, &self.pc_escape, &mut cur.pc_escape);
        *prev_pc = pc;
        let r = 3 * i;
        let dest = (m & meta::HAS_DEST != 0).then(|| self.regs[r]);
        let srcs = [
            (m & meta::HAS_SRC0 != 0).then(|| self.regs[r + 1]),
            (m & meta::HAS_SRC1 != 0).then(|| self.regs[r + 2]),
        ];
        let mem = (m & meta::HAS_MEM != 0).then(|| {
            let j = cur.mem;
            cur.mem += 1;
            let addr = self.mem_addr[j];
            let base = decode_delta(
                self.mem_base_delta[j],
                addr,
                &self.mem_base_escape,
                &mut cur.base_escape,
            );
            MemRef { addr, base, size: self.mem_size[j] }
        });
        let branch = (m & meta::HAS_BRANCH != 0).then(|| {
            let j = cur.br;
            cur.br += 1;
            let target = decode_delta(
                self.br_target_delta[j],
                pc,
                &self.br_target_escape,
                &mut cur.target_escape,
            );
            BranchInfo { taken: self.br_taken[j] != 0, target }
        });
        Some(Instr { pc, kind, dest, srcs, mem, branch })
    }
}

/// Sequential decode position within one [`Segment`]: the row index plus
/// running positions into every side column.
#[derive(Debug, Clone, Copy, Default)]
pub struct SegmentCursor {
    pos: usize,
    mem: usize,
    br: usize,
    pc_escape: usize,
    base_escape: usize,
    target_escape: usize,
}

impl SegmentCursor {
    /// A cursor at the start of a segment.
    #[must_use]
    pub fn new() -> SegmentCursor {
        SegmentCursor::default()
    }
}

/// Streaming encoder producing [`Segment`]s.
///
/// Holds the cross-segment pc-delta state: instruction pcs are encoded
/// relative to the previous instruction *in the stream*, not the
/// segment, so the builder must see the stream in order and decoders
/// must thread `prev_pc` the same way.
#[derive(Debug, Default)]
pub struct SegmentBuilder {
    prev_pc: u64,
    meta: Vec<u8>,
    regs: Vec<u8>,
    pc_delta: Vec<i32>,
    pc_escape: Vec<u64>,
    mem_addr: Vec<u64>,
    mem_base_delta: Vec<i32>,
    mem_base_escape: Vec<u64>,
    mem_size: Vec<u8>,
    br_taken: Vec<u8>,
    br_target_delta: Vec<i32>,
    br_target_escape: Vec<u64>,
}

impl SegmentBuilder {
    /// An empty builder at stream position zero.
    #[must_use]
    pub fn new() -> SegmentBuilder {
        SegmentBuilder::default()
    }

    /// Instructions in the currently open (unfinished) segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when no instructions are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Appends one instruction to the open segment.
    pub fn push(&mut self, instr: &Instr) {
        let mut m = kind_code(instr.kind);
        self.pc_delta.push(encode_delta(instr.pc, self.prev_pc, &mut self.pc_escape));
        self.prev_pc = instr.pc;
        if let Some(d) = instr.dest {
            m |= meta::HAS_DEST;
            self.regs.push(d);
        } else {
            self.regs.push(0);
        }
        for (k, src) in instr.srcs.iter().enumerate() {
            if let Some(s) = src {
                m |= if k == 0 { meta::HAS_SRC0 } else { meta::HAS_SRC1 };
                self.regs.push(*s);
            } else {
                self.regs.push(0);
            }
        }
        if let Some(mem) = instr.mem {
            m |= meta::HAS_MEM;
            self.mem_addr.push(mem.addr);
            self.mem_base_delta.push(encode_delta(mem.base, mem.addr, &mut self.mem_base_escape));
            self.mem_size.push(mem.size);
        }
        if let Some(b) = instr.branch {
            m |= meta::HAS_BRANCH;
            self.br_taken.push(u8::from(b.taken));
            self.br_target_delta.push(encode_delta(b.target, instr.pc, &mut self.br_target_escape));
        }
        self.meta.push(m);
    }

    /// Seals the open segment, leaving the builder empty but keeping the
    /// cross-segment pc state for the next one.
    pub fn finish_segment(&mut self) -> Segment {
        Segment {
            meta: std::mem::take(&mut self.meta).into_boxed_slice(),
            regs: std::mem::take(&mut self.regs).into_boxed_slice(),
            pc_delta: std::mem::take(&mut self.pc_delta).into_boxed_slice(),
            pc_escape: std::mem::take(&mut self.pc_escape).into_boxed_slice(),
            mem_addr: std::mem::take(&mut self.mem_addr).into_boxed_slice(),
            mem_base_delta: std::mem::take(&mut self.mem_base_delta).into_boxed_slice(),
            mem_base_escape: std::mem::take(&mut self.mem_base_escape).into_boxed_slice(),
            mem_size: std::mem::take(&mut self.mem_size).into_boxed_slice(),
            br_taken: std::mem::take(&mut self.br_taken).into_boxed_slice(),
            br_target_delta: std::mem::take(&mut self.br_target_delta).into_boxed_slice(),
            br_target_escape: std::mem::take(&mut self.br_target_escape).into_boxed_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(segments: &[Segment]) -> Vec<Instr> {
        let mut out = Vec::new();
        let mut prev_pc = 0;
        for seg in segments {
            let mut cur = SegmentCursor::new();
            while let Some(i) = seg.decode(&mut cur, &mut prev_pc) {
                out.push(i);
            }
        }
        out
    }

    fn round_trip(instrs: &[Instr], split_at: usize) {
        let mut b = SegmentBuilder::new();
        let mut segments = Vec::new();
        for (k, i) in instrs.iter().enumerate() {
            if k == split_at && !b.is_empty() {
                segments.push(b.finish_segment());
            }
            b.push(i);
        }
        if !b.is_empty() {
            segments.push(b.finish_segment());
        }
        assert_eq!(decode_all(&segments), instrs, "split at {split_at}");
    }

    /// Deterministic pseudo-random instruction mix, including values that
    /// overflow every delta column.
    fn awkward_stream(n: usize) -> Vec<Instr> {
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pc = 0x40_0000_u64;
        (0..n)
            .map(|_| {
                let r = rng();
                // Occasionally teleport the pc so deltas escape.
                pc = if r % 97 == 0 { rng() } else { pc.wrapping_add(4) };
                let kind = match r % 7 {
                    0 => InstrKind::IntAlu,
                    1 => InstrKind::IntMul,
                    2 => InstrKind::FpAlu,
                    3 => InstrKind::Load,
                    4 => InstrKind::Store,
                    5 => InstrKind::Branch,
                    _ => InstrKind::Jump,
                };
                let mut i = Instr::new(pc, kind);
                if r % 3 != 0 {
                    i = i.with_dest((r % 64) as u8);
                }
                i = i.with_srcs(
                    (r % 5 != 0).then_some((r % 61) as u8),
                    (r % 4 == 0).then_some(((r >> 8) % 64) as u8),
                );
                if kind.is_mem() {
                    let addr = rng();
                    // Mix near bases (delta fits) and far bases (escape).
                    let base = if r % 11 == 0 { rng() } else { addr.wrapping_sub(r % 4096) };
                    i = i.with_mem(MemRef { addr, base, size: 1 << (r % 4) });
                }
                if kind.is_control() {
                    let target = if r % 13 == 0 { rng() } else { pc.wrapping_add(r % 65536) };
                    i = i.with_branch(BranchInfo { taken: r % 2 == 0, target });
                }
                i
            })
            .collect()
    }

    #[test]
    fn round_trips_exactly_across_segment_splits() {
        let instrs = awkward_stream(500);
        for split in [0, 1, 7, 250, 499, 500] {
            round_trip(&instrs, split);
        }
    }

    #[test]
    fn round_trips_extreme_values() {
        let instrs = vec![
            Instr::new(u64::MAX, InstrKind::Load).with_dest(63).with_mem(MemRef {
                addr: 0,
                base: u64::MAX,
                size: 8,
            }),
            Instr::new(0, InstrKind::Branch)
                .with_branch(BranchInfo { taken: true, target: u64::MAX / 2 }),
            // Delta of exactly i32::MIN must take the escape path (it is
            // the sentinel).
            Instr::new(i32::MIN as i64 as u64, InstrKind::Jump)
                .with_branch(BranchInfo { taken: false, target: 0 }),
        ];
        round_trip(&instrs, 1);
    }

    #[test]
    fn columnar_layout_is_at_least_4x_smaller_on_a_typical_mix() {
        // A representative mix: ~30% memory ops, ~15% control, contiguous
        // pcs — what the synthetic suite produces.
        let mut pc = 0x1000_u64;
        let instrs: Vec<Instr> = (0..4096)
            .map(|k| {
                pc += 4;
                match k % 20 {
                    0..=5 => Instr::new(pc, InstrKind::Load).with_dest(1).with_mem(MemRef {
                        addr: 0x10_0000 + k,
                        base: 0x10_0000,
                        size: 8,
                    }),
                    6..=8 => Instr::new(pc, InstrKind::Branch)
                        .with_srcs(Some(2), None)
                        .with_branch(BranchInfo { taken: k % 2 == 0, target: pc - 64 }),
                    _ => Instr::new(pc, InstrKind::IntAlu).with_dest(3).with_srcs(Some(1), Some(2)),
                }
            })
            .collect();
        let mut b = SegmentBuilder::new();
        for i in &instrs {
            b.push(i);
        }
        let seg = b.finish_segment();
        let soa = seg.heap_bytes();
        let aos = instrs.len() * std::mem::size_of::<Instr>();
        assert!(
            soa * 4 <= aos,
            "columnar {soa} B vs Instr array {aos} B — expected >= 4x reduction"
        );
        assert_eq!(decode_all(&[seg]), instrs);
    }

    #[test]
    fn builder_reports_open_segment_length() {
        let mut b = SegmentBuilder::new();
        assert!(b.is_empty());
        b.push(&Instr::new(4, InstrKind::IntAlu));
        assert_eq!(b.len(), 1);
        let seg = b.finish_segment();
        assert_eq!(seg.len(), 1);
        assert!(!seg.is_empty());
        assert!(b.is_empty(), "finish drains the builder");
    }
}
