//! Set-associative L1 cache with subarray precharge accounting.

use crate::config::CacheConfig;
use crate::policy::{ActivityReport, FaultEvent, PrechargePolicy, ResizeRequest};
use crate::waypred::{WayPredictor, WayStats};

/// One tag-array entry.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// Result of one L1 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit in the tag array.
    pub hit: bool,
    /// Extra cycles spent waiting for bitline pull-up (0 when the subarray
    /// was precharged).
    pub extra_latency: u32,
    /// Data subarray the access touched.
    pub subarray: usize,
}

/// A set-associative L1 cache with a pluggable [`PrechargePolicy`].
///
/// The tag array is modelled functionally (LRU replacement, write-back
/// write-allocate); fill latencies are the responsibility of the
/// surrounding [`crate::MemorySystem`]. The cache supports dynamic resizing
/// (fewer active sets and/or ways) for the resizable-cache baseline; a
/// resize invalidates the whole array, modelling the remapping misses that
/// the paper charges to resizable caches (Section 6.4).
///
/// # Examples
///
/// ```
/// use bitline_cache::{CacheConfig, L1Cache, PrechargePolicy, ActivityReport};
///
/// struct Always;
/// impl PrechargePolicy for Always {
///     fn name(&self) -> String { "always".into() }
///     fn access(&mut self, _s: usize, _c: u64) -> u32 { 0 }
///     fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
///         ActivityReport { policy: self.name(), end_cycle, per_subarray: vec![] }
///     }
/// }
///
/// let mut l1 = L1Cache::new(CacheConfig::l1_data(), Box::new(Always));
/// let first = l1.access(0x1000, false, 10);
/// assert!(!first.hit);
/// let again = l1.access(0x1000, false, 11);
/// assert!(again.hit);
/// ```
pub struct L1Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    active_sets: usize,
    active_ways: usize,
    policy: Box<dyn PrechargePolicy>,
    /// Per-subarray access counts (kept by the cache itself so live tools
    /// can sample activity without finalizing the policy).
    subarray_accesses: Vec<u64>,
    way_predictor: Option<WayPredictor>,
    lru_clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    resizes: u64,
    upset_replays: u64,
    silent_upsets: u64,
    ecc_corrections: u64,
    fault_retry_cycles: u64,
}

impl std::fmt::Debug for L1Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L1Cache")
            .field("config", &self.config)
            .field("active_sets", &self.active_sets)
            .field("active_ways", &self.active_ways)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish_non_exhaustive()
    }
}

impl L1Cache {
    /// Creates the cache at full size.
    #[must_use]
    pub fn new(config: CacheConfig, policy: Box<dyn PrechargePolicy>) -> L1Cache {
        let sets = config.sets();
        L1Cache {
            active_sets: sets,
            active_ways: config.assoc,
            sets: vec![vec![Line::default(); config.assoc]; sets],
            subarray_accesses: vec![0; config.subarrays()],
            way_predictor: config.way_prediction.then(|| WayPredictor::new(sets, config.assoc)),
            config,
            policy,
            lru_clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            resizes: 0,
            upset_replays: 0,
            silent_upsets: 0,
            ecc_corrections: 0,
            fault_retry_cycles: 0,
        }
    }

    /// The cache configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Performs one access (lookup + fill on miss) at `cycle`.
    pub fn access(&mut self, addr: u64, is_write: bool, cycle: u64) -> AccessResult {
        self.access_inner(addr, None, is_write, cycle)
    }

    /// Performs one access carrying a predecode prediction: the subarray
    /// computed from `predicted_addr` (the base-register value) may have
    /// been pulled up during address calculation (Section 6.3).
    pub fn access_predicted(
        &mut self,
        addr: u64,
        predicted_addr: u64,
        is_write: bool,
        cycle: u64,
    ) -> AccessResult {
        self.access_inner(addr, Some(predicted_addr), is_write, cycle)
    }

    fn access_inner(
        &mut self,
        addr: u64,
        predicted_addr: Option<u64>,
        is_write: bool,
        cycle: u64,
    ) -> AccessResult {
        let set_idx = self.config.set_index_resized(addr, self.active_sets);
        let tag = self.config.tag_resized(addr, self.active_sets);
        let subarray = self.config.subarray_of_set(set_idx);
        let mut extra_latency = match predicted_addr {
            Some(p) => {
                let p_set = self.config.set_index_resized(p, self.active_sets);
                let predicted = self.config.subarray_of_set(p_set);
                self.policy.access_with_prediction(subarray, predicted, cycle)
            }
            None => self.policy.access(subarray, cycle),
        };
        self.subarray_accesses[subarray] += 1;

        self.lru_clock += 1;
        let ways = self.active_ways;
        let set = &mut self.sets[set_idx];
        let hit_way = set[..ways].iter().position(|l| l.valid && l.tag == tag);
        let hit = match hit_way {
            Some(w) => {
                set[w].lru = self.lru_clock;
                set[w].dirty |= is_write;
                if let Some(wp) = &mut self.way_predictor {
                    let correct = wp.predict(set_idx) == w;
                    wp.record(correct);
                    wp.update(set_idx, w);
                    if !correct {
                        // Mispredicted way: re-probe costs a cycle.
                        extra_latency += 1;
                    }
                }
                true
            }
            None => {
                // Fill into the LRU way among the active ways.
                let victim = (0..ways)
                    .min_by_key(|&w| if set[w].valid { set[w].lru } else { 0 })
                    .expect("cache has at least one way");
                if set[victim].valid && set[victim].dirty {
                    self.writebacks += 1;
                }
                set[victim] = Line { valid: true, dirty: is_write, tag, lru: self.lru_clock };
                false
            }
        };
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.policy.observe_outcome(hit);
        // Recovery: a detected sense-margin upset is replayed against a
        // freshly precharged subarray; the replay latency rides on
        // `extra_latency`, so dependent instructions see it exactly like a
        // slow pull-up (and the core's load-hit speculation replays them).
        if let Some(fault) = self.policy.take_fault() {
            match fault {
                FaultEvent::DetectedUpset { retry_cycles } => {
                    self.upset_replays += 1;
                    self.fault_retry_cycles += u64::from(retry_cycles);
                    extra_latency += retry_cycles;
                }
                FaultEvent::CorrectedUpset { correction_cycles } => {
                    self.ecc_corrections += 1;
                    self.fault_retry_cycles += u64::from(correction_cycles);
                    extra_latency += correction_cycles;
                }
                FaultEvent::SilentUpset => self.silent_upsets += 1,
            }
        }
        if let Some(req) = self.policy.resize_request() {
            self.apply_resize(req, cycle);
        }
        AccessResult { hit, extra_latency, subarray }
    }

    /// Forwards a predecode hint: the subarray predicted from a base
    /// register value may be precharged ahead of the access (Section 6.3).
    pub fn hint(&mut self, predicted_addr: u64, cycle: u64) {
        let set_idx = self.config.set_index_resized(predicted_addr, self.active_sets);
        let subarray = self.config.subarray_of_set(set_idx);
        self.policy.hint(subarray, cycle);
    }

    fn apply_resize(&mut self, req: ResizeRequest, cycle: u64) {
        let sets = req.active_sets.clamp(1, self.config.sets());
        let ways = req.active_ways.clamp(1, self.config.assoc);
        if sets == self.active_sets && ways == self.active_ways {
            return;
        }
        self.active_sets = sets;
        self.active_ways = ways;
        self.resizes += 1;
        // Remapping: conservatively invalidate everything (clean lines are
        // dropped; dirty lines are written back).
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.valid && line.dirty {
                    self.writebacks += 1;
                }
                *line = Line::default();
            }
        }
        let active_subarrays = self.active_sets.div_ceil(self.config.sets_per_subarray());
        let way_fraction = self.active_ways as f64 / self.config.assoc as f64;
        self.policy.notify_resize(active_subarrays, way_fraction, cycle);
    }

    /// Way-prediction outcome counts, when way prediction is enabled.
    #[must_use]
    pub fn way_stats(&self) -> Option<WayStats> {
        self.way_predictor.as_ref().map(WayPredictor::stats)
    }

    /// Cumulative per-subarray access counts (live view; the policy's
    /// [`ActivityReport`] carries the authoritative copy at finalize).
    #[must_use]
    pub fn subarray_access_counts(&self) -> Vec<u64> {
        self.subarray_accesses.clone()
    }

    /// Number of currently active sets.
    #[must_use]
    pub fn active_sets(&self) -> usize {
        self.active_sets
    }

    /// Number of currently active ways.
    #[must_use]
    pub fn active_ways(&self) -> usize {
        self.active_ways
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    #[must_use]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Resize events applied.
    #[must_use]
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Reads replayed after a detected sense-margin upset.
    #[must_use]
    pub fn upset_replays(&self) -> u64 {
        self.upset_replays
    }

    /// Upsets that escaped detection (silent data corruption).
    #[must_use]
    pub fn silent_upsets(&self) -> u64 {
        self.silent_upsets
    }

    /// Upsets the ECC codec corrected in flight (no replay needed).
    #[must_use]
    pub fn ecc_corrections(&self) -> u64 {
        self.ecc_corrections
    }

    /// Total extra cycles spent on upset replays.
    #[must_use]
    pub fn fault_retry_cycles(&self) -> u64 {
        self.fault_retry_cycles
    }

    /// Miss ratio so far (0 when no accesses).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Closes precharge accounting and returns the activity report.
    pub fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
        self.policy.finalize(end_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SubarrayActivity;

    /// Minimal policy: everything precharged, no delays, counts accesses.
    struct Counting {
        per: Vec<SubarrayActivity>,
    }

    impl Counting {
        fn new(n: usize) -> Counting {
            Counting { per: vec![SubarrayActivity::default(); n] }
        }
    }

    impl PrechargePolicy for Counting {
        fn name(&self) -> String {
            "counting".into()
        }
        fn access(&mut self, subarray: usize, _cycle: u64) -> u32 {
            self.per[subarray].accesses += 1;
            0
        }
        fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
            ActivityReport {
                policy: self.name(),
                end_cycle,
                per_subarray: std::mem::take(&mut self.per),
            }
        }
    }

    fn cache() -> L1Cache {
        let cfg = CacheConfig::l1_data();
        let n = cfg.subarrays();
        L1Cache::new(cfg, Box::new(Counting::new(n)))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        assert!(!c.access(0x4000, false, 1).hit);
        assert!(c.access(0x4000, false, 2).hit);
        assert!(c.access(0x4010, false, 3).hit, "same 32 B line");
        assert!(!c.access(0x4020, false, 4).hit, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn two_way_conflicts_evict_lru() {
        let mut c = cache();
        // Three lines mapping to the same set (16 KB apart at full size).
        let a = 0x0u64;
        let b = a + 16 * 1024;
        let d = a + 32 * 1024;
        c.access(a, false, 1);
        c.access(b, false, 2);
        assert!(c.access(a, false, 3).hit);
        c.access(d, false, 4); // evicts b (LRU)
        assert!(c.access(a, false, 5).hit, "a is MRU, must survive");
        assert!(!c.access(b, false, 6).hit, "b was evicted");
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = cache();
        let a = 0x0u64;
        let b = a + 16 * 1024;
        let d = a + 32 * 1024;
        c.access(a, true, 1); // dirty
        c.access(b, false, 2);
        c.access(d, false, 3); // evicts a (LRU, dirty)
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn accesses_reach_the_right_subarray() {
        let mut c = cache();
        let r = c.access(0x0, false, 1);
        assert_eq!(r.subarray, 0);
        let r = c.access(512, false, 2);
        assert_eq!(r.subarray, 1);
        let r = c.access(31 * 512, false, 3); // last 512 B chunk of the 16 KB span
        assert_eq!(r.subarray, 31);
    }

    #[test]
    fn resize_invalidates_and_remaps() {
        struct ShrinkOnce {
            fired: bool,
        }
        impl PrechargePolicy for ShrinkOnce {
            fn name(&self) -> String {
                "shrink".into()
            }
            fn access(&mut self, _s: usize, _c: u64) -> u32 {
                0
            }
            fn resize_request(&mut self) -> Option<ResizeRequest> {
                if self.fired {
                    None
                } else {
                    self.fired = true;
                    Some(ResizeRequest { active_sets: 128, active_ways: 1 })
                }
            }
            fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
                ActivityReport { policy: self.name(), end_cycle, per_subarray: vec![] }
            }
        }
        let mut c = L1Cache::new(CacheConfig::l1_data(), Box::new(ShrinkOnce { fired: false }));
        c.access(0x8000, false, 1); // triggers the resize after the access
        assert_eq!(c.active_sets(), 128);
        assert_eq!(c.active_ways(), 1);
        assert_eq!(c.resizes(), 1);
        // Everything was invalidated.
        assert!(!c.access(0x8000, false, 2).hit);
        // Under 128 sets, addresses 4 KB apart now conflict.
        let r1 = c.access(0x0, false, 3);
        let r2 = c.access(4096, false, 4);
        assert_eq!(r1.subarray, r2.subarray);
    }

    #[test]
    fn faults_add_retry_latency_and_are_counted() {
        /// Raises a detected upset on every 3rd access and a silent one on
        /// every 7th.
        struct Faulty {
            n: u64,
            pending: Option<crate::policy::FaultEvent>,
        }
        impl PrechargePolicy for Faulty {
            fn name(&self) -> String {
                "faulty".into()
            }
            fn access(&mut self, _s: usize, _c: u64) -> u32 {
                self.n += 1;
                if self.n.is_multiple_of(3) {
                    self.pending =
                        Some(crate::policy::FaultEvent::DetectedUpset { retry_cycles: 2 });
                } else if self.n.is_multiple_of(7) {
                    self.pending = Some(crate::policy::FaultEvent::SilentUpset);
                }
                0
            }
            fn take_fault(&mut self) -> Option<crate::policy::FaultEvent> {
                self.pending.take()
            }
            fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
                ActivityReport { policy: self.name(), end_cycle, per_subarray: vec![] }
            }
        }
        let mut c = L1Cache::new(CacheConfig::l1_data(), Box::new(Faulty { n: 0, pending: None }));
        let mut total_extra = 0;
        for i in 0..21u64 {
            total_extra += c.access(i * 32, false, i).extra_latency;
        }
        assert_eq!(c.upset_replays(), 7, "accesses 3,6,9,12,15,18,21");
        assert_eq!(c.silent_upsets(), 2, "accesses 7 and 14 (21 went to the upset arm)");
        assert_eq!(c.fault_retry_cycles(), 14);
        assert_eq!(total_extra, 14, "replay latency must reach the access result");
    }

    #[test]
    fn miss_ratio_tracks_stream() {
        let mut c = cache();
        // Stream 4 KB of sequential 8-byte loads: one miss per 32 B line.
        for i in 0..512u64 {
            c.access(0x10_0000 + i * 8, false, i);
        }
        let expected = 128.0 / 512.0;
        assert!((c.miss_ratio() - expected).abs() < 1e-9, "{}", c.miss_ratio());
    }
}
