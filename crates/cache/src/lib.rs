//! Subarray-organised cache models for the `bitline` workspace.
//!
//! High-performance L1 caches divide their data array into subarrays to
//! shorten bitlines (Section 2 of the paper); which subarrays are kept
//! precharged is the knob the paper's techniques turn. This crate provides:
//!
//! * [`CacheConfig`] — geometry of a cache (Table 2's L1s by default) and
//!   the address → set → subarray mapping;
//! * [`L1Cache`] — a set-associative tag/data model with per-subarray
//!   activity accounting, pluggable [`PrechargePolicy`], and support for
//!   dynamic resizing (for the resizable-cache baseline);
//! * [`L2Cache`], [`Mshr`], [`MemorySystem`] — the rest of the hierarchy
//!   (512 KB unified L2, 8 MSHRs, 100-cycle + 4-cycle/8 B memory);
//! * [`PrechargePolicy`] and [`ActivityReport`] — the interface the
//!   policies in the `gated-precharge` crate implement, and the activity
//!   statistics the Wattch-like accounting in `bitline-energy` consumes.
//!
//! # Examples
//!
//! ```
//! use bitline_cache::CacheConfig;
//!
//! let l1d = CacheConfig::l1_data();
//! assert_eq!(l1d.sets(), 512);
//! assert_eq!(l1d.subarrays(), 32);
//! // Consecutive 512 B regions map to different subarrays.
//! assert_ne!(l1d.subarray_of(0x1000), l1d.subarray_of(0x1000 + 512));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod l1;
mod l2;
mod mshr;
mod policy;
mod system;
mod waypred;

pub use config::CacheConfig;
pub use l1::{AccessResult, L1Cache};
pub use l2::L2Cache;
pub use mshr::Mshr;
pub use policy::{
    ActivityReport, AlwaysPrecharged, FaultEvent, IdleHistogram, PrechargePolicy, ResizeRequest,
    SubarrayActivity, IDLE_BUCKETS,
};
pub use system::{AccessOutcome, MemorySystem, MemorySystemConfig};
pub use waypred::{WayPredictor, WayStats};
