//! Miss status holding registers.

/// A set of miss status holding registers (Table 2: 8 entries).
///
/// Outstanding misses to the same line are merged; when all registers are
/// busy a new miss queues behind the earliest-completing one, adding to its
/// latency — a simple but faithful bandwidth limiter on outstanding misses.
///
/// # Examples
///
/// ```
/// use bitline_cache::Mshr;
///
/// let mut mshr = Mshr::new(8);
/// // A miss that takes 12 cycles to fill.
/// assert_eq!(mshr.request(0x40, 100, 12), 12);
/// // A second miss to the same line merges into the outstanding one.
/// assert_eq!(mshr.request(0x40, 104, 12), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    capacity: usize,
    /// `(line, ready_cycle)` for outstanding misses.
    entries: Vec<(u64, u64)>,
    merges: u64,
    stalls: u64,
}

impl Mshr {
    /// Creates `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Mshr {
        assert!(capacity > 0, "need at least one MSHR");
        Mshr { capacity, entries: Vec::with_capacity(capacity), merges: 0, stalls: 0 }
    }

    /// Registers a miss to `line` at `cycle` with `fill_latency` cycles of
    /// service time; returns the total cycles until the data is ready.
    pub fn request(&mut self, line: u64, cycle: u64, fill_latency: u32) -> u32 {
        // Retire completed entries.
        self.entries.retain(|&(_, ready)| ready > cycle);
        // Merge with an outstanding miss to the same line.
        if let Some(&(_, ready)) = self.entries.iter().find(|&&(l, _)| l == line) {
            self.merges += 1;
            return (ready - cycle) as u32;
        }
        // Allocate, queueing behind the earliest completion if full.
        let start = if self.entries.len() >= self.capacity {
            self.stalls += 1;
            let (idx, &(_, earliest)) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(_, r))| r)
                .expect("full MSHR is non-empty");
            self.entries.swap_remove(idx);
            earliest
        } else {
            cycle
        };
        let ready = start + u64::from(fill_latency);
        self.entries.push((line, ready));
        (ready - cycle) as u32
    }

    /// Number of outstanding entries at `cycle`.
    #[must_use]
    pub fn outstanding(&self, cycle: u64) -> usize {
        self.entries.iter().filter(|&&(_, ready)| ready > cycle).count()
    }

    /// Misses merged into an outstanding entry.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Requests that had to queue because all registers were busy.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_misses_run_in_parallel() {
        let mut m = Mshr::new(8);
        for i in 0..8u64 {
            assert_eq!(m.request(i, 0, 100), 100, "miss {i} should not queue");
        }
        assert_eq!(m.outstanding(50), 8);
        assert_eq!(m.stalls(), 0);
    }

    #[test]
    fn ninth_miss_queues_behind_earliest() {
        let mut m = Mshr::new(8);
        for i in 0..8u64 {
            m.request(i, i, 100); // ready at i + 100
        }
        // At cycle 10 all 8 are busy; the earliest completes at 100.
        let lat = m.request(99, 10, 100);
        assert_eq!(lat, (100 - 10) + 100);
        assert_eq!(m.stalls(), 1);
    }

    #[test]
    fn completed_entries_free_registers() {
        let mut m = Mshr::new(2);
        m.request(1, 0, 10);
        m.request(2, 0, 10);
        // Both done by cycle 20: no queueing.
        assert_eq!(m.request(3, 20, 10), 10);
        assert_eq!(m.stalls(), 0);
    }

    #[test]
    fn merge_reports_remaining_time() {
        let mut m = Mshr::new(4);
        m.request(7, 0, 116);
        assert_eq!(m.request(7, 100, 116), 16);
        assert_eq!(m.merges(), 1);
    }
}
