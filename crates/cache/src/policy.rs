//! The precharge-policy interface and activity accounting.
//!
//! A [`PrechargePolicy`] decides, access by access, which subarrays are
//! precharged and which are isolated. The cache calls it on every access
//! (and forwards predecode hints and hit/miss outcomes); at the end of a
//! run [`PrechargePolicy::finalize`] produces an [`ActivityReport`] — the
//! per-subarray pull-up/idle statistics that `bitline-energy` combines with
//! the circuit models, exactly the methodology of Section 3 of the paper
//! ("we gather the subarray pull-up/idle time distributions from the
//! architectural simulations and combine them with the bitline discharge
//! results from the circuit simulations").

use serde::{Deserialize, Serialize};

/// Number of logarithmic idle-duration buckets in an [`IdleHistogram`].
pub const IDLE_BUCKETS: usize = 28;

/// Histogram of isolation-episode idle durations, log2-bucketed in cycles.
///
/// Bucket `b` holds episodes whose idle time was in `[2^b, 2^(b+1))`
/// cycles; the representative duration used for energy integration is
/// `1.5 * 2^b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleHistogram {
    counts: [u64; IDLE_BUCKETS],
}

impl Default for IdleHistogram {
    fn default() -> Self {
        IdleHistogram { counts: [0; IDLE_BUCKETS] }
    }
}

impl IdleHistogram {
    /// Records one isolation episode of `idle_cycles`.
    pub fn record(&mut self, idle_cycles: u64) {
        let b = (64 - idle_cycles.max(1).leading_zeros() - 1) as usize;
        self.counts[b.min(IDLE_BUCKETS - 1)] += 1;
    }

    /// Total number of episodes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(representative_idle_cycles, count)` over non-empty
    /// buckets.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (1.5 * (1u64 << b) as f64, c))
    }

    /// Raw bucket counts, index `b` covering idle durations around
    /// `1.5 * 2^b` cycles (for external serialization).
    #[must_use]
    pub fn counts(&self) -> &[u64; IDLE_BUCKETS] {
        &self.counts
    }

    /// Rebuilds a histogram from raw bucket counts (the inverse of
    /// [`IdleHistogram::counts`]).
    #[must_use]
    pub fn from_counts(counts: [u64; IDLE_BUCKETS]) -> IdleHistogram {
        IdleHistogram { counts }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &IdleHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// Per-subarray activity gathered over a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubarrayActivity {
    /// Total accesses that touched this subarray.
    pub accesses: u64,
    /// Accesses that found the subarray isolated and paid the pull-up
    /// penalty.
    pub delayed_accesses: u64,
    /// Subarray-cycles spent pulled up (fractional to support way-granular
    /// resizing).
    pub pulled_up_cycles: f64,
    /// Off→on precharge transitions.
    pub precharge_events: u64,
    /// Subarray-cycles spent in drowsy (low retention voltage) mode — used
    /// by the drowsy-cache comparison policy; zero for bitline-isolation
    /// policies.
    pub drowsy_cycles: f64,
    /// Isolation episodes by idle duration.
    pub idle_histogram: IdleHistogram,
}

/// A fault raised by a fault-injecting policy during the access that just
/// completed, polled by the cache via
/// [`PrechargePolicy::take_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A read fell below sense margin and the margin detector caught it:
    /// the cache replays the read against a freshly precharged subarray,
    /// paying `retry_cycles` of extra latency.
    DetectedUpset {
        /// Full-precharge replay penalty in cycles.
        retry_cycles: u32,
    },
    /// An upset the ECC codec corrected in flight: the read completes
    /// with good data after `correction_cycles` of syndrome-decode
    /// latency — no replay needed.
    CorrectedUpset {
        /// Syndrome decode + correction latency in cycles.
        correction_cycles: u32,
    },
    /// An upset that escaped detection — silent data corruption. Counted,
    /// but timing is unaffected (nothing noticed).
    SilentUpset,
}

/// A resize request from a resizable-cache policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResizeRequest {
    /// Number of sets to keep active (power of two, <= full).
    pub active_sets: usize,
    /// Number of ways to keep active (1..=assoc).
    pub active_ways: usize,
}

/// Whole-run activity summary produced by [`PrechargePolicy::finalize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityReport {
    /// Policy name (for reporting).
    pub policy: String,
    /// Cycles simulated.
    pub end_cycle: u64,
    /// Per-subarray activity.
    pub per_subarray: Vec<SubarrayActivity>,
}

impl ActivityReport {
    /// Total accesses across subarrays.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.accesses).sum()
    }

    /// Total delayed accesses.
    #[must_use]
    pub fn total_delayed(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.delayed_accesses).sum()
    }

    /// Total pulled-up subarray-cycles.
    #[must_use]
    pub fn total_pulled_up_cycles(&self) -> f64 {
        self.per_subarray.iter().map(|s| s.pulled_up_cycles).sum()
    }

    /// Total precharge (off→on) events.
    #[must_use]
    pub fn total_precharge_events(&self) -> u64 {
        self.per_subarray.iter().map(|s| s.precharge_events).sum()
    }

    /// Average fraction of subarrays precharged at any time — the left bars
    /// of the paper's Figure 8 (1.0 for static pull-up).
    ///
    /// # Panics
    ///
    /// Panics if the report covers zero cycles.
    #[must_use]
    pub fn precharged_fraction(&self) -> f64 {
        assert!(self.end_cycle > 0, "empty report");
        let budget = (self.per_subarray.len() as f64) * self.end_cycle as f64;
        self.total_pulled_up_cycles() / budget
    }

    /// Fraction of accesses that were delayed.
    #[must_use]
    pub fn delayed_fraction(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.total_delayed() as f64 / total as f64
        }
    }

    /// Total drowsy subarray-cycles.
    #[must_use]
    pub fn total_drowsy_cycles(&self) -> f64 {
        self.per_subarray.iter().map(|s| s.drowsy_cycles).sum()
    }

    /// Merged idle histogram across subarrays.
    #[must_use]
    pub fn idle_histogram(&self) -> IdleHistogram {
        let mut h = IdleHistogram::default();
        for s in &self.per_subarray {
            h.merge(&s.idle_histogram);
        }
        h
    }
}

/// A bitline precharge controller for one cache.
///
/// Implementations live in the `gated-precharge` crate: static pull-up,
/// oracle, on-demand, gated (with predecode hints) and resizable. The cache
/// drives the policy through this interface:
///
/// 1. [`hint`](PrechargePolicy::hint) — optional early subarray prediction
///    (predecoding, Section 6.3);
/// 2. [`access`](PrechargePolicy::access) — mandatory, returns the extra
///    cycles the access pays for bitline pull-up (0 when the subarray was
///    already precharged);
/// 3. [`observe_outcome`](PrechargePolicy::observe_outcome) — hit/miss
///    feedback (used by the resizable baseline);
/// 4. [`resize_request`](PrechargePolicy::resize_request) — polled after
///    each access; a `Some` return makes the cache resize and invalidate;
/// 5. [`finalize`](PrechargePolicy::finalize) — closes accounting.
pub trait PrechargePolicy {
    /// Policy name for reports.
    fn name(&self) -> String;

    /// Registers an access to `subarray` at `cycle`; returns extra latency
    /// cycles spent waiting for bitline pull-up.
    fn access(&mut self, subarray: usize, cycle: u64) -> u32;

    /// An access accompanied by a predecode prediction (Section 6.3): the
    /// subarray predicted from the base register a few pipeline stages
    /// earlier. A correct prediction lets the pull-up start during address
    /// calculation and hides the cold-access penalty. Default: the
    /// prediction is ignored.
    fn access_with_prediction(&mut self, subarray: usize, _predicted: usize, cycle: u64) -> u32 {
        self.access(subarray, cycle)
    }

    /// Early subarray prediction (predecoding). Default: ignored.
    fn hint(&mut self, _subarray: usize, _cycle: u64) {}

    /// Hit/miss feedback for the access just performed. Default: ignored.
    fn observe_outcome(&mut self, _hit: bool) {}

    /// Polled by the cache after each access; `Some` triggers a resize.
    fn resize_request(&mut self) -> Option<ResizeRequest> {
        None
    }

    /// Polled by the cache after each access: did the access just performed
    /// suffer a fault? Only fault-injecting decorators ever return `Some`;
    /// the default (and every plain policy) reports a fault-free access.
    fn take_fault(&mut self) -> Option<FaultEvent> {
        None
    }

    /// Informs the policy that the cache now has `active_subarrays` active
    /// (after honouring a resize request) and `active_way_fraction` of each
    /// subarray's bitlines enabled.
    fn notify_resize(&mut self, _active_subarrays: usize, _active_way_fraction: f64, _cycle: u64) {}

    /// Closes the books and returns the activity report.
    fn finalize(&mut self, end_cycle: u64) -> ActivityReport;
}

/// The trivial policy: every subarray statically pulled up, no delays.
///
/// This is the in-crate primitive used as the default for caches whose
/// precharge behaviour is not under study (e.g. the L2); the
/// `gated-precharge` crate's `StaticPullUp` is the instrumented equivalent
/// for L1 baselines.
#[derive(Debug, Clone)]
pub struct AlwaysPrecharged {
    acts: Vec<SubarrayActivity>,
}

impl AlwaysPrecharged {
    /// Creates the policy for `subarrays` subarrays.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays` is zero.
    #[must_use]
    pub fn new(subarrays: usize) -> AlwaysPrecharged {
        assert!(subarrays > 0, "cache must have at least one subarray");
        AlwaysPrecharged { acts: vec![SubarrayActivity::default(); subarrays] }
    }
}

impl PrechargePolicy for AlwaysPrecharged {
    fn name(&self) -> String {
        "always-precharged".into()
    }

    fn access(&mut self, subarray: usize, _cycle: u64) -> u32 {
        self.acts[subarray].accesses += 1;
        0
    }

    fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
        let mut per_subarray = std::mem::take(&mut self.acts);
        for s in &mut per_subarray {
            s.pulled_up_cycles = end_cycle as f64;
        }
        ActivityReport { policy: self.name(), end_cycle, per_subarray }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_precharged_reports_full_pullup() {
        let mut p = AlwaysPrecharged::new(4);
        p.access(1, 5);
        let r = p.finalize(100);
        assert_eq!(r.total_accesses(), 1);
        assert!((r.precharged_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_histogram_buckets_by_log2() {
        let mut h = IdleHistogram::default();
        h.record(1);
        h.record(3);
        h.record(1000);
        assert_eq!(h.total(), 3);
        let buckets: Vec<(f64, u64)> = h.iter().collect();
        assert_eq!(buckets.len(), 3);
        assert!((buckets[0].0 - 1.5).abs() < 1e-12);
        assert!((buckets[1].0 - 3.0).abs() < 1e-12);
        // 1000 lands in [512, 1024) -> representative 768.
        assert!((buckets[2].0 - 768.0).abs() < 1e-12);
    }

    #[test]
    fn idle_histogram_clamps_zero_and_huge() {
        let mut h = IdleHistogram::default();
        h.record(0); // clamped to bucket 0
        h.record(u64::MAX); // clamped to last bucket
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn report_aggregates() {
        let a = SubarrayActivity {
            accesses: 10,
            delayed_accesses: 2,
            pulled_up_cycles: 50.0,
            ..Default::default()
        };
        let b = SubarrayActivity { accesses: 30, pulled_up_cycles: 150.0, ..Default::default() };
        let r = ActivityReport { policy: "test".into(), end_cycle: 100, per_subarray: vec![a, b] };
        assert_eq!(r.total_accesses(), 40);
        assert_eq!(r.total_delayed(), 2);
        assert!((r.precharged_fraction() - 1.0).abs() < 1e-12); // 200 / (2*100)
        assert!((r.delayed_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IdleHistogram::default();
        let mut b = IdleHistogram::default();
        a.record(4);
        b.record(4);
        b.record(8);
        a.merge(&b);
        assert_eq!(a.total(), 3);
    }
}
