//! Cache geometry and address mapping.

use bitline_circuit::SubarrayGeometry;
use serde::{Deserialize, Serialize};

/// Geometry of one cache and its subarray organisation.
///
/// Both ways of a set live in the same data subarray (ways are interleaved
/// column-wise), so a single access touches exactly one data subarray — the
/// organisation the paper's oracle study assumes ("the oracle ... precharges
/// only this subarray", Section 4).
///
/// # Examples
///
/// ```
/// use bitline_cache::CacheConfig;
///
/// let l1i = CacheConfig::l1_inst();
/// assert_eq!(l1i.hit_latency, 2);
/// assert_eq!(l1i.subarrays(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Set associativity.
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Data subarray size in bytes.
    pub subarray_bytes: usize,
    /// Number of ports (each adds a differential bitline pair per column).
    pub ports: usize,
    /// Load-to-use hit latency in cycles.
    pub hit_latency: u32,
    /// Enable MRU way prediction (reads probe one way; mispredictions pay
    /// a re-probe cycle). Orthogonal to the precharge policies.
    pub way_prediction: bool,
}

impl CacheConfig {
    /// Table 2's L1 data cache: 32 KB, 2-way, 3-cycle, 2RW + 2R ports,
    /// 32 B lines, 1 KB subarrays.
    #[must_use]
    pub fn l1_data() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 2,
            line_bytes: 32,
            subarray_bytes: 1024,
            ports: 4,
            hit_latency: 3,
            way_prediction: false,
        }
    }

    /// Table 2's L1 instruction cache: 32 KB, 2-way, 2-cycle, 2RW ports.
    #[must_use]
    pub fn l1_inst() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 2,
            line_bytes: 32,
            subarray_bytes: 1024,
            ports: 2,
            hit_latency: 2,
            way_prediction: false,
        }
    }

    /// Table 2's unified L2: 512 KB, 4-way, 12-cycle, single-ported, 4 KB
    /// subarrays (the organisation the Alpha 21164's on-demand L2
    /// precharging worked with; Section 2 of the paper).
    #[must_use]
    pub fn l2_unified() -> CacheConfig {
        CacheConfig {
            size_bytes: 512 * 1024,
            assoc: 4,
            line_bytes: 32,
            subarray_bytes: 4096,
            ports: 1,
            hit_latency: 12,
            way_prediction: false,
        }
    }

    /// Same configuration with MRU way prediction enabled.
    #[must_use]
    pub fn with_way_prediction(mut self) -> CacheConfig {
        self.way_prediction = true;
        self
    }

    /// Same configuration with a different subarray size (Figure 10 sweep).
    ///
    /// # Panics
    ///
    /// Panics if the new size does not evenly divide the cache (see
    /// [`SubarrayGeometry::for_cache`]).
    #[must_use]
    pub fn with_subarray_bytes(mut self, subarray_bytes: usize) -> CacheConfig {
        self.subarray_bytes = subarray_bytes;
        let _ = self.geometry(); // validate
        self
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// Number of data subarrays.
    #[must_use]
    pub fn subarrays(&self) -> usize {
        self.size_bytes / self.subarray_bytes
    }

    /// Sets stored per subarray (all ways of a set share one subarray).
    #[must_use]
    pub fn sets_per_subarray(&self) -> usize {
        (self.sets() / self.subarrays()).max(1)
    }

    /// Set index of an address at full size.
    #[must_use]
    pub fn set_index(&self, addr: u64) -> usize {
        (addr as usize / self.line_bytes) % self.sets()
    }

    /// Set index when only `active_sets` sets are enabled (resizable
    /// caches).
    #[must_use]
    pub fn set_index_resized(&self, addr: u64, active_sets: usize) -> usize {
        (addr as usize / self.line_bytes) % active_sets
    }

    /// Tag of an address (line address above the index bits).
    #[must_use]
    pub fn tag(&self, addr: u64) -> u64 {
        addr / (self.line_bytes as u64) / (self.sets() as u64)
    }

    /// Tag when resized (more address bits become tag).
    #[must_use]
    pub fn tag_resized(&self, addr: u64, active_sets: usize) -> u64 {
        addr / (self.line_bytes as u64) / (active_sets as u64)
    }

    /// Data subarray holding a set.
    #[must_use]
    pub fn subarray_of_set(&self, set: usize) -> usize {
        set / self.sets_per_subarray()
    }

    /// Data subarray an address maps to at full size.
    #[must_use]
    pub fn subarray_of(&self, addr: u64) -> usize {
        self.subarray_of_set(self.set_index(addr))
    }

    /// Electrical geometry of one subarray for the circuit models.
    #[must_use]
    pub fn geometry(&self) -> SubarrayGeometry {
        SubarrayGeometry::for_cache(
            self.subarray_bytes,
            self.line_bytes,
            self.ports,
            self.size_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1d_matches_table2() {
        let c = CacheConfig::l1_data();
        assert_eq!(c.sets(), 512);
        assert_eq!(c.subarrays(), 32);
        assert_eq!(c.sets_per_subarray(), 16);
        assert_eq!(c.hit_latency, 3);
        assert_eq!(c.ports, 4);
    }

    #[test]
    fn subarray_mapping_has_512_byte_granularity() {
        let c = CacheConfig::l1_data();
        // 16 sets/subarray * 32 B lines = 512 B of consecutive addresses
        // per subarray before moving to the next.
        for base in [0u64, 1 << 20, 0x1234_0000] {
            let s0 = c.subarray_of(base);
            assert_eq!(c.subarray_of(base + 511), s0);
            assert_eq!(c.subarray_of(base + 512), (s0 + 1) % c.subarrays());
        }
    }

    #[test]
    fn mapping_wraps_every_16kb() {
        let c = CacheConfig::l1_data();
        // 512 sets * 32 B = 16 KB of address space covers all subarrays.
        assert_eq!(c.subarray_of(0), c.subarray_of(16 * 1024));
    }

    #[test]
    fn figure10_sweep_produces_expected_counts() {
        for (bytes, count) in [(4096, 8), (1024, 32), (256, 128), (64, 512)] {
            let c = CacheConfig::l1_data().with_subarray_bytes(bytes);
            assert_eq!(c.subarrays(), count);
            // Every set must map to a valid subarray.
            for set in 0..c.sets() {
                assert!(c.subarray_of_set(set) < count);
            }
        }
    }

    #[test]
    fn resized_index_stays_in_range() {
        let c = CacheConfig::l1_data();
        for active in [64, 128, 256, 512] {
            for addr in (0..1u64 << 20).step_by(4093) {
                assert!(c.set_index_resized(addr, active) < active);
            }
        }
    }

    #[test]
    fn tags_distinguish_lines_that_share_a_set() {
        let c = CacheConfig::l1_data();
        let a = 0x1000u64;
        let b = a + 16 * 1024; // same set at full size
        assert_eq!(c.set_index(a), c.set_index(b));
        assert_ne!(c.tag(a), c.tag(b));
    }
}
