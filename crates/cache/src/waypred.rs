//! MRU way prediction (Inoue et al., ISLPED 1999; Powell et al., MICRO
//! 2001 — the paper's references [12, 15]).
//!
//! Set-associative caches normally probe **all** ways of a set in parallel
//! (tag lookup overlaps data access), burning read energy in every way.
//! A way predictor reads only the predicted way; a correct prediction
//! saves the other ways' read energy, a wrong one costs an extra probe
//! cycle. The paper notes this is orthogonal to bitline isolation — it
//! cuts *dynamic read* energy where gated precharging cuts *static
//! bitline discharge* — and the two compose, which `bitline-energy`
//! accounts for via [`WayStats`].

use serde::{Deserialize, Serialize};

/// Most-recently-used way predictor: one way index per set.
///
/// # Examples
///
/// ```
/// use bitline_cache::WayPredictor;
///
/// let mut wp = WayPredictor::new(512, 2);
/// assert_eq!(wp.predict(7), 0, "cold prediction defaults to way 0");
/// wp.update(7, 1);
/// assert_eq!(wp.predict(7), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WayPredictor {
    mru: Vec<u8>,
    correct: u64,
    wrong: u64,
}

/// Way-prediction outcome counts for energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WayStats {
    /// Hits whose way was predicted correctly (one way read).
    pub correct: u64,
    /// Hits whose way was mispredicted (all ways read, plus a re-probe
    /// cycle).
    pub wrong: u64,
}

impl WayPredictor {
    /// Creates a predictor for `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or `assoc` is zero or above 256.
    #[must_use]
    pub fn new(sets: usize, assoc: usize) -> WayPredictor {
        assert!(sets > 0, "need at least one set");
        assert!((1..=256).contains(&assoc), "associativity out of range");
        WayPredictor { mru: vec![0; sets], correct: 0, wrong: 0 }
    }

    /// Predicted way for `set`.
    #[must_use]
    pub fn predict(&self, set: usize) -> usize {
        self.mru[set] as usize
    }

    /// Trains the predictor with the way that actually hit.
    pub fn update(&mut self, set: usize, way: usize) {
        self.mru[set] = way as u8;
    }

    /// Records a resolved prediction.
    pub fn record(&mut self, was_correct: bool) {
        if was_correct {
            self.correct += 1;
        } else {
            self.wrong += 1;
        }
    }

    /// Outcome counts so far.
    #[must_use]
    pub fn stats(&self) -> WayStats {
        WayStats { correct: self.correct, wrong: self.wrong }
    }

    /// Prediction accuracy over resolved hits (0 when none).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.wrong;
        if total == 0 {
            0.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mru_tracks_the_last_hitting_way() {
        let mut wp = WayPredictor::new(4, 2);
        wp.update(2, 1);
        assert_eq!(wp.predict(2), 1);
        assert_eq!(wp.predict(3), 0, "other sets unaffected");
        wp.update(2, 0);
        assert_eq!(wp.predict(2), 0);
    }

    #[test]
    fn accuracy_accumulates() {
        let mut wp = WayPredictor::new(4, 2);
        wp.record(true);
        wp.record(true);
        wp.record(false);
        assert_eq!(wp.stats(), WayStats { correct: 2, wrong: 1 });
        assert!((wp.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_predictor_reports_zero_accuracy() {
        let wp = WayPredictor::new(4, 2);
        assert_eq!(wp.accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn rejects_zero_sets() {
        let _ = WayPredictor::new(0, 2);
    }
}
