//! Unified L2 cache model (tag array only; Table 2: 512 KB, 4-way,
//! 12-cycle).

/// One L2 tag entry.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    lru: u64,
}

/// A unified second-level cache.
///
/// Functional tag array with LRU replacement; latency is applied by
/// [`crate::MemorySystem`]. The L2 uses static pull-up in the paper (its
/// precharge behaviour is not under study), so no precharge policy is
/// attached.
///
/// # Examples
///
/// ```
/// use bitline_cache::L2Cache;
///
/// let mut l2 = L2Cache::new(512 * 1024, 4, 32);
/// assert!(!l2.access(0x1234_0000));
/// assert!(l2.access(0x1234_0000));
/// ```
#[derive(Debug)]
pub struct L2Cache {
    line_bytes: usize,
    sets: Vec<Vec<Line>>,
    lru_clock: u64,
    hits: u64,
    misses: u64,
}

impl L2Cache {
    /// Creates the cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    #[must_use]
    pub fn new(size_bytes: usize, assoc: usize, line_bytes: usize) -> L2Cache {
        assert!(size_bytes.is_multiple_of(assoc * line_bytes), "L2 geometry must divide evenly");
        let n_sets = size_bytes / (assoc * line_bytes);
        L2Cache {
            line_bytes,
            sets: vec![vec![Line::default(); assoc]; n_sets],
            lru_clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `addr`, filling on miss. Returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes as u64;
        let n_sets = self.sets.len() as u64;
        let set_idx = (line % n_sets) as usize;
        let tag = line / n_sets;
        self.lru_clock += 1;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            set[way].lru = self.lru_clock;
            self.hits += 1;
            true
        } else {
            let victim = (0..set.len())
                .min_by_key(|&w| if set[w].valid { set[w].lru } else { 0 })
                .expect("L2 has at least one way");
            set[victim] = Line { valid: true, tag, lru: self.lru_clock };
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio so far (0 when no accesses).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_fits() {
        let mut l2 = L2Cache::new(512 * 1024, 4, 32);
        for pass in 0..2 {
            for i in 0..1024u64 {
                let hit = l2.access(i * 32);
                if pass == 1 {
                    assert!(hit, "line {i} should be resident on the second pass");
                }
            }
        }
    }

    #[test]
    fn capacity_eviction_kicks_in() {
        let mut l2 = L2Cache::new(512 * 1024, 4, 32);
        // Stream 2 MB (4x the capacity) twice: second pass still misses.
        let lines = (2 * 1024 * 1024 / 32) as u64;
        for _ in 0..2 {
            for i in 0..lines {
                l2.access(i * 32);
            }
        }
        assert!(l2.miss_ratio() > 0.9, "miss ratio {}", l2.miss_ratio());
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn rejects_bad_geometry() {
        let _ = L2Cache::new(1000, 3, 32);
    }
}
