//! The full memory hierarchy: split L1s, unified L2, MSHRs, memory.

use crate::config::CacheConfig;
use crate::l1::L1Cache;
use crate::mshr::Mshr;
use crate::policy::{ActivityReport, AlwaysPrecharged, PrechargePolicy};

/// Hierarchy parameters (Table 2 defaults).
#[derive(Debug, Clone, Copy)]
pub struct MemorySystemConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified L2 size in bytes (512 KB).
    pub l2_size: usize,
    /// L2 associativity (4).
    pub l2_assoc: usize,
    /// L2 line size in bytes.
    pub l2_line: usize,
    /// L2 access latency in cycles (12).
    pub l2_latency: u32,
    /// Memory base latency in cycles (100).
    pub mem_latency: u32,
    /// Additional memory cycles per 8 bytes transferred (4).
    pub mem_cycles_per_8b: u32,
    /// MSHR entries per L1 (8).
    pub mshr_entries: usize,
    /// Optional L3 size in bytes (4 MB). The L3 itself is only built by
    /// [`MemorySystem::with_hierarchy`]; these parameters are inert
    /// otherwise.
    pub l3_size: usize,
    /// L3 associativity (8).
    pub l3_assoc: usize,
    /// L3 access latency in cycles (30).
    pub l3_latency: u32,
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        MemorySystemConfig {
            l1d: CacheConfig::l1_data(),
            l1i: CacheConfig::l1_inst(),
            l2_size: 512 * 1024,
            l2_assoc: 4,
            l2_line: 32,
            l2_latency: 12,
            mem_latency: 100,
            mem_cycles_per_8b: 4,
            mshr_entries: 8,
            l3_size: 4 * 1024 * 1024,
            l3_assoc: 8,
            l3_latency: 30,
        }
    }
}

/// Timing outcome of one memory-system access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total load-to-use latency in cycles (includes the L1 hit latency).
    pub latency: u32,
    /// Whether the access hit in its L1.
    pub l1_hit: bool,
    /// Whether the access paid a bitline pull-up delay.
    pub delayed: bool,
    /// The L1 data subarray touched.
    pub subarray: usize,
}

/// The complete cache/memory hierarchy of Table 2.
///
/// # Examples
///
/// ```
/// use bitline_cache::{ActivityReport, MemorySystem, MemorySystemConfig, PrechargePolicy};
///
/// struct Always;
/// impl PrechargePolicy for Always {
///     fn name(&self) -> String { "always".into() }
///     fn access(&mut self, _s: usize, _c: u64) -> u32 { 0 }
///     fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
///         ActivityReport { policy: self.name(), end_cycle, per_subarray: vec![] }
///     }
/// }
///
/// let cfg = MemorySystemConfig::default();
/// let mut mem = MemorySystem::new(cfg, Box::new(Always), Box::new(Always));
/// let cold = mem.data_access(0x1000, false, 0);
/// assert!(!cold.l1_hit);
/// let warm = mem.data_access(0x1000, false, 200);
/// assert_eq!(warm.latency, cfg.l1d.hit_latency);
/// ```
pub struct MemorySystem {
    cfg: MemorySystemConfig,
    l1d: L1Cache,
    l1i: L1Cache,
    l2: L1Cache,
    l3: Option<L1Cache>,
    mshr_d: Mshr,
    mshr_i: Mshr,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("l1d", &self.l1d)
            .field("l1i", &self.l1i)
            .field("l2", &self.l2)
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Builds the hierarchy with precharge policies for the two L1s; the
    /// L2 uses conventional static pull-up (the configuration under study
    /// in the paper).
    #[must_use]
    pub fn new(
        cfg: MemorySystemConfig,
        d_policy: Box<dyn PrechargePolicy>,
        i_policy: Box<dyn PrechargePolicy>,
    ) -> MemorySystem {
        let l2_cfg = Self::l2_config(&cfg);
        let l2_policy = Box::new(AlwaysPrecharged::new(l2_cfg.subarrays()));
        Self::with_l2_policy(cfg, d_policy, i_policy, l2_policy)
    }

    /// Builds the hierarchy with an explicit L2 precharge policy as well —
    /// the Alpha 21164 applied on-demand precharging at the L2, where the
    /// long access latency hides the pull-up (Section 2 of the paper).
    #[must_use]
    pub fn with_l2_policy(
        cfg: MemorySystemConfig,
        d_policy: Box<dyn PrechargePolicy>,
        i_policy: Box<dyn PrechargePolicy>,
        l2_policy: Box<dyn PrechargePolicy>,
    ) -> MemorySystem {
        Self::with_hierarchy(cfg, d_policy, i_policy, l2_policy, None)
    }

    /// Builds the full multi-level hierarchy: managed L1s, a managed L2,
    /// and — when `l3_policy` is provided — an L3 between the L2 and
    /// memory. With `l3_policy == None` this is exactly
    /// [`MemorySystem::with_l2_policy`]; the stock two-level system never
    /// pays for the deeper hierarchy.
    #[must_use]
    pub fn with_hierarchy(
        cfg: MemorySystemConfig,
        d_policy: Box<dyn PrechargePolicy>,
        i_policy: Box<dyn PrechargePolicy>,
        l2_policy: Box<dyn PrechargePolicy>,
        l3_policy: Option<Box<dyn PrechargePolicy>>,
    ) -> MemorySystem {
        let l2_cfg = Self::l2_config(&cfg);
        let l3_cfg = Self::l3_config(&cfg);
        MemorySystem {
            l1d: L1Cache::new(cfg.l1d, d_policy),
            l1i: L1Cache::new(cfg.l1i, i_policy),
            l2: L1Cache::new(l2_cfg, l2_policy),
            l3: l3_policy.map(|p| L1Cache::new(l3_cfg, p)),
            mshr_d: Mshr::new(cfg.mshr_entries),
            mshr_i: Mshr::new(cfg.mshr_entries),
            cfg,
        }
    }

    /// Geometry of the unified L2 implied by the hierarchy parameters.
    #[must_use]
    pub fn l2_config(cfg: &MemorySystemConfig) -> CacheConfig {
        CacheConfig {
            size_bytes: cfg.l2_size,
            assoc: cfg.l2_assoc,
            line_bytes: cfg.l2_line,
            subarray_bytes: 4096,
            ports: 1,
            hit_latency: cfg.l2_latency,
            way_prediction: false,
        }
    }

    /// Geometry of the optional L3 implied by the hierarchy parameters:
    /// bigger subarrays than the L2 (8 KB), same line size, one port.
    #[must_use]
    pub fn l3_config(cfg: &MemorySystemConfig) -> CacheConfig {
        CacheConfig {
            size_bytes: cfg.l3_size,
            assoc: cfg.l3_assoc,
            line_bytes: cfg.l2_line,
            subarray_bytes: 8192,
            ports: 1,
            hit_latency: cfg.l3_latency,
            way_prediction: false,
        }
    }

    /// Latency of a memory (DRAM) line fill.
    fn memory_latency(&self) -> u32 {
        self.cfg.mem_latency + self.cfg.mem_cycles_per_8b * (self.cfg.l2_line as u32 / 8)
    }

    /// Fill latency of an L1 miss through the outer levels: L2 lookup,
    /// then — on an L2 miss — the L3 when present, then memory. The L2/L3
    /// precharge policies' pull-up delays ride on the fill like any other
    /// latency.
    fn outer_fill(&mut self, addr: u64, is_store: bool, cycle: u64) -> u32 {
        let mem = self.memory_latency();
        let r2 = self.l2.access(addr, is_store, cycle);
        let mut fill = self.cfg.l2_latency + r2.extra_latency;
        if !r2.hit {
            match self.l3.as_mut() {
                Some(l3) => {
                    let r3 = l3.access(addr, is_store, cycle);
                    fill += self.cfg.l3_latency + r3.extra_latency;
                    if !r3.hit {
                        fill += mem;
                    }
                }
                None => fill += mem,
            }
        }
        fill
    }

    /// One data access (load or store) at `cycle`.
    pub fn data_access(&mut self, addr: u64, is_store: bool, cycle: u64) -> AccessOutcome {
        self.data_access_predicted(addr, None, is_store, cycle)
    }

    /// One data access carrying an optional predecode prediction (the
    /// base-register value; Section 6.3).
    pub fn data_access_predicted(
        &mut self,
        addr: u64,
        predicted_addr: Option<u64>,
        is_store: bool,
        cycle: u64,
    ) -> AccessOutcome {
        let r = match predicted_addr {
            Some(p) => self.l1d.access_predicted(addr, p, is_store, cycle),
            None => self.l1d.access(addr, is_store, cycle),
        };
        let mut latency = self.cfg.l1d.hit_latency + r.extra_latency;
        if !r.hit {
            let fill = self.outer_fill(addr, is_store, cycle);
            let line = addr / self.cfg.l1d.line_bytes as u64;
            latency += self.mshr_d.request(line, cycle, fill);
        }
        AccessOutcome { latency, l1_hit: r.hit, delayed: r.extra_latency > 0, subarray: r.subarray }
    }

    /// One instruction fetch of the line containing `pc` at `cycle`.
    pub fn inst_fetch(&mut self, pc: u64, cycle: u64) -> AccessOutcome {
        let r = self.l1i.access(pc, false, cycle);
        let mut latency = self.cfg.l1i.hit_latency + r.extra_latency;
        if !r.hit {
            let fill = self.outer_fill(pc, false, cycle);
            let line = pc / self.cfg.l1i.line_bytes as u64;
            latency += self.mshr_i.request(line, cycle, fill);
        }
        AccessOutcome { latency, l1_hit: r.hit, delayed: r.extra_latency > 0, subarray: r.subarray }
    }

    /// Forwards a predecode hint for an upcoming data access (Section 6.3).
    pub fn data_hint(&mut self, predicted_addr: u64, cycle: u64) {
        self.l1d.hint(predicted_addr, cycle);
    }

    /// The L1 data cache.
    #[must_use]
    pub fn l1d(&self) -> &L1Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    #[must_use]
    pub fn l1i(&self) -> &L1Cache {
        &self.l1i
    }

    /// The unified L2.
    #[must_use]
    pub fn l2(&self) -> &L1Cache {
        &self.l2
    }

    /// The optional L3 (present only when built via
    /// [`MemorySystem::with_hierarchy`] with an L3 policy).
    #[must_use]
    pub fn l3(&self) -> Option<&L1Cache> {
        self.l3.as_ref()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemorySystemConfig {
        &self.cfg
    }

    /// Closes precharge accounting; returns `(data, instruction)` reports.
    pub fn finalize(&mut self, end_cycle: u64) -> (ActivityReport, ActivityReport) {
        (self.l1d.finalize(end_cycle), self.l1i.finalize(end_cycle))
    }

    /// Closes the L2's precharge accounting.
    pub fn finalize_l2(&mut self, end_cycle: u64) -> ActivityReport {
        self.l2.finalize(end_cycle)
    }

    /// Closes the L3's precharge accounting, when an L3 exists.
    pub fn finalize_l3(&mut self, end_cycle: u64) -> Option<ActivityReport> {
        self.l3.as_mut().map(|l3| l3.finalize(end_cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ActivityReport;

    struct Always;
    impl PrechargePolicy for Always {
        fn name(&self) -> String {
            "always".into()
        }
        fn access(&mut self, _s: usize, _c: u64) -> u32 {
            0
        }
        fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
            ActivityReport { policy: self.name(), end_cycle, per_subarray: vec![] }
        }
    }

    /// Counts accesses into a single-subarray report, so finalize-based
    /// assertions see real activity (the `Always` double reports nothing).
    struct Recording(u64);
    impl PrechargePolicy for Recording {
        fn name(&self) -> String {
            "recording".into()
        }
        fn access(&mut self, _s: usize, _c: u64) -> u32 {
            self.0 += 1;
            0
        }
        fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
            ActivityReport {
                policy: self.name(),
                end_cycle,
                per_subarray: vec![crate::SubarrayActivity {
                    accesses: self.0,
                    ..crate::SubarrayActivity::default()
                }],
            }
        }
    }

    struct AlwaysCold;
    impl PrechargePolicy for AlwaysCold {
        fn name(&self) -> String {
            "cold".into()
        }
        fn access(&mut self, _s: usize, _c: u64) -> u32 {
            1
        }
        fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
            ActivityReport { policy: self.name(), end_cycle, per_subarray: vec![] }
        }
    }

    fn system() -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::default(), Box::new(Always), Box::new(Always))
    }

    #[test]
    fn l1_hit_latency_is_three_cycles() {
        let mut m = system();
        m.data_access(0x2000, false, 0);
        let warm = m.data_access(0x2000, false, 500);
        assert_eq!(warm.latency, 3);
        assert!(warm.l1_hit);
    }

    #[test]
    fn l2_hit_adds_twelve_cycles() {
        let mut m = system();
        m.data_access(0x2000, false, 0); // into L1 + L2
                                         // Evict from L1 by filling its set, then re-access: L2 hit.
        m.data_access(0x2000 + 16 * 1024, false, 100);
        m.data_access(0x2000 + 32 * 1024, false, 200);
        let r = m.data_access(0x2000, false, 1000);
        assert!(!r.l1_hit);
        assert_eq!(r.latency, 3 + 12);
    }

    #[test]
    fn memory_fill_costs_l2_plus_dram() {
        let mut m = system();
        let r = m.data_access(0x9000, false, 0);
        assert!(!r.l1_hit);
        // 3 (L1) + 12 (L2 lookup) + 100 + 4 * 32/8 (DRAM).
        assert_eq!(r.latency, 3 + 12 + 100 + 16);
    }

    #[test]
    fn precharge_delay_propagates_to_latency() {
        let mut m = MemorySystem::new(
            MemorySystemConfig::default(),
            Box::new(AlwaysCold),
            Box::new(AlwaysCold),
        );
        m.data_access(0x2000, false, 0);
        let r = m.data_access(0x2000, false, 100);
        assert!(r.l1_hit);
        assert!(r.delayed);
        assert_eq!(r.latency, 4, "3-cycle hit + 1-cycle pull-up");
        let f = m.inst_fetch(0x40_0000, 0);
        assert!(f.delayed);
    }

    #[test]
    fn icache_hits_cost_two_cycles() {
        let mut m = system();
        m.inst_fetch(0x40_0000, 0);
        let r = m.inst_fetch(0x40_0004, 300);
        assert!(r.l1_hit, "same line");
        assert_eq!(r.latency, 2);
    }

    #[test]
    fn l2_policy_delay_adds_to_fill_latency() {
        let cfg = MemorySystemConfig::default();
        let l2_cfg = MemorySystem::l2_config(&cfg);
        let mut m = MemorySystem::with_l2_policy(
            cfg,
            Box::new(Always),
            Box::new(Always),
            Box::new(AlwaysCold),
        );
        assert_eq!(l2_cfg.subarrays(), 128);
        // L1 miss, L2 miss, L2 pays +1 pull-up:
        // 3 + (12 + 1) + 100 + 16.
        let r = m.data_access(0x9000, false, 0);
        assert_eq!(r.latency, 3 + 13 + 116);
    }

    #[test]
    fn l2_report_is_finalizable() {
        let mut m = system();
        m.data_access(0x9000, false, 0);
        let report = m.finalize_l2(100);
        assert_eq!(report.total_accesses(), 1);
        assert!((report.precharged_fraction() - 1.0).abs() < 1e-12, "default static L2");
    }

    fn three_level_system() -> MemorySystem {
        MemorySystem::with_hierarchy(
            MemorySystemConfig::default(),
            Box::new(Always),
            Box::new(Always),
            Box::new(Always),
            Some(Box::new(Always)),
        )
    }

    #[test]
    fn l3_lookup_rides_on_the_memory_fill() {
        let mut m = three_level_system();
        // 3 (L1) + 12 (L2) + 30 (L3) + 100 + 16 (DRAM).
        let r = m.data_access(0x9000, false, 0);
        assert!(!r.l1_hit);
        assert_eq!(r.latency, 3 + 12 + 30 + 116);
    }

    #[test]
    fn l3_hit_spares_the_memory_latency() {
        let mut m = three_level_system();
        m.data_access(0x2000, false, 0); // fills L1, L2 and L3
                                         // Evict 0x2000 from both the L1 set (2-way) and the L2 set
                                         // (4-way) with conflicting lines 128 KB apart; the L3's sets
                                         // are four times as numerous, so it keeps the line.
        for k in 1..=4u64 {
            m.data_access(0x2000 + k * 128 * 1024, false, k * 100);
        }
        let r = m.data_access(0x2000, false, 10_000);
        assert!(!r.l1_hit);
        assert_eq!(r.latency, 3 + 12 + 30, "L2 evicted the line; the L3 retains it");
    }

    #[test]
    fn l3_policy_delay_adds_to_fill_latency() {
        let mut m = MemorySystem::with_hierarchy(
            MemorySystemConfig::default(),
            Box::new(Always),
            Box::new(Always),
            Box::new(Always),
            Some(Box::new(AlwaysCold)),
        );
        // 3 + 12 + (30 + 1 pull-up) + 116.
        let r = m.data_access(0x9000, false, 0);
        assert_eq!(r.latency, 3 + 12 + 31 + 116);
    }

    #[test]
    fn two_level_system_has_no_l3_and_identical_latencies() {
        let mut m = system();
        assert!(m.l3().is_none());
        assert!(m.finalize_l3(100).is_none());
        let r = m.data_access(0x9000, false, 0);
        assert_eq!(r.latency, 3 + 12 + 116, "stock fill path is untouched by the L3 plumbing");
    }

    #[test]
    fn per_level_traffic_is_observable() {
        let mut m = MemorySystem::with_hierarchy(
            MemorySystemConfig::default(),
            Box::new(Always),
            Box::new(Always),
            Box::new(Always),
            Some(Box::new(Recording(0))),
        );
        m.data_access(0x9000, true, 0); // cold: misses L1/L2/L3
        m.data_access(0x9000, false, 100); // warm: L1 hit
        assert_eq!(m.l1d().hits(), 1);
        assert_eq!(m.l1d().misses(), 1);
        assert_eq!(m.l2().misses(), 1);
        let l3 = m.l3().expect("three-level system");
        assert_eq!(l3.misses(), 1);
        assert_eq!(l3.hits(), 0);
        let report = m.finalize_l3(200).expect("L3 report");
        assert_eq!(report.total_accesses(), 1);
    }

    #[test]
    fn data_and_inst_streams_share_the_l2() {
        let mut m = system();
        m.data_access(0x5000, false, 0); // fills L2
                                         // Evict 0x5000 from L1D, then fetch the same line as an instruction:
                                         // it should hit in the unified L2.
        let r = m.inst_fetch(0x5000, 400);
        assert!(!r.l1_hit);
        assert_eq!(r.latency, 2 + 12);
    }
}
