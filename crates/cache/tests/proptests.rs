//! Property-based tests for the cache structures.

use proptest::prelude::*;

use bitline_cache::{ActivityReport, CacheConfig, L1Cache, Mshr, PrechargePolicy};

struct NoDelay;
impl PrechargePolicy for NoDelay {
    fn name(&self) -> String {
        "nodelay".into()
    }
    fn access(&mut self, _s: usize, _c: u64) -> u32 {
        0
    }
    fn finalize(&mut self, end_cycle: u64) -> ActivityReport {
        ActivityReport { policy: self.name(), end_cycle, per_subarray: vec![] }
    }
}

proptest! {
    /// Address mapping stays in range for any address and any legal
    /// subarray size.
    #[test]
    fn subarray_mapping_in_range(addr in any::<u64>(), size_pow in 6usize..=12) {
        let cfg = CacheConfig::l1_data().with_subarray_bytes(1 << size_pow);
        prop_assert!(cfg.set_index(addr) < cfg.sets());
        prop_assert!(cfg.subarray_of(addr) < cfg.subarrays());
    }

    /// Same line => same set and subarray; different tags distinguish
    /// conflicting lines.
    #[test]
    fn line_granular_mapping(addr in any::<u64>(), off in 0u64..32) {
        let cfg = CacheConfig::l1_data();
        let base = addr & !31;
        prop_assert_eq!(cfg.set_index(base), cfg.set_index(base + off));
        prop_assert_eq!(cfg.subarray_of(base), cfg.subarray_of(base + off));
        prop_assert_eq!(cfg.tag(base), cfg.tag(base + off));
    }

    /// An access immediately after an access to the same address always
    /// hits, no matter what happened before.
    #[test]
    fn immediate_reuse_always_hits(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..200),
        probe in 0u64..(1 << 24),
    ) {
        let mut l1 = L1Cache::new(CacheConfig::l1_data(), Box::new(NoDelay));
        for (c, a) in addrs.iter().enumerate() {
            l1.access(*a, false, c as u64);
        }
        l1.access(probe, false, 1_000);
        let r = l1.access(probe, false, 1_001);
        prop_assert!(r.hit);
    }

    /// Hits + misses always equals accesses, and the miss ratio is in
    /// [0, 1].
    #[test]
    fn hit_miss_accounting(addrs in prop::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut l1 = L1Cache::new(CacheConfig::l1_data(), Box::new(NoDelay));
        for (c, a) in addrs.iter().enumerate() {
            l1.access(*a, (a % 3) == 0, c as u64);
        }
        prop_assert_eq!(l1.hits() + l1.misses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&l1.miss_ratio()));
    }

    /// A working set no larger than one way per set never misses after the
    /// first pass, regardless of ordering.
    #[test]
    fn small_working_set_converges(mut lines in prop::collection::vec(0u64..256, 1..64)) {
        lines.sort_unstable();
        lines.dedup();
        let mut l1 = L1Cache::new(CacheConfig::l1_data(), Box::new(NoDelay));
        let mut cycle = 0;
        for pass in 0..3 {
            for l in &lines {
                cycle += 1;
                let r = l1.access(l * 32, false, cycle);
                if pass > 0 {
                    prop_assert!(r.hit, "line {l} missed on pass {pass}");
                }
            }
        }
    }

    /// The MSHR never reports a latency below the fill latency, and
    /// outstanding entries never exceed capacity.
    #[test]
    fn mshr_latency_and_capacity(
        reqs in prop::collection::vec((0u64..32, 1u64..50), 1..100),
        cap in 1usize..12,
    ) {
        let mut mshr = Mshr::new(cap);
        let mut cycle = 0;
        for (line, gap) in reqs {
            cycle += gap;
            let lat = mshr.request(line, cycle, 20);
            prop_assert!(lat >= 1, "latency must be positive");
            prop_assert!(mshr.outstanding(cycle) <= cap);
        }
    }
}
