//! I/O fault shims: deterministic failing writers shared by the journal
//! crash tests and any other code that needs a filesystem that dies on
//! schedule.
//!
//! [`FallibleWriter`] is the byte-budget model (promoted from the
//! original journal test-local copy): good for exhaustive "cut the stream
//! at *every* byte offset" sweeps. [`FailpointWriter`] wraps a real
//! writer and consults a named failpoint per `write` call, so the same
//! `BITLINE_FAILPOINTS` vocabulary drives both unit-level and
//! whole-process fault schedules.

use std::io::{self, Write};

use crate::WriteFate;

/// An `io::Write` that models a filesystem running out of space: it
/// honours at most `budget` bytes in total, serves *short* writes (at
/// most `max_chunk` bytes per call) on the way there, and then fails
/// every call with `ENOSPC`. Standard library callers like `write_all`
/// retry short writes, so the bytes that reach "disk" are exactly the
/// first `budget` — a frame cut mid-payload, mid-header, or mid-magic
/// depending on the budget.
pub struct FallibleWriter {
    /// Everything that reached the simulated disk, in order.
    pub out: Vec<u8>,
    /// Bytes still accepted before every call fails with ENOSPC.
    pub budget: usize,
    /// Largest number of bytes a single `write` call will take.
    pub max_chunk: usize,
}

impl FallibleWriter {
    /// A writer that accepts `budget` bytes in chunks of at most
    /// `max_chunk`, then fails with ENOSPC forever.
    #[must_use]
    pub fn new(budget: usize, max_chunk: usize) -> Self {
        Self { out: Vec::new(), budget, max_chunk }
    }
}

impl Write for FallibleWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 || buf.is_empty() {
            if buf.is_empty() {
                return Ok(0);
            }
            // 28 == ENOSPC on Linux.
            return Err(io::Error::from_raw_os_error(28));
        }
        let n = buf.len().min(self.budget).min(self.max_chunk);
        self.out.extend_from_slice(&buf[..n]);
        self.budget -= n;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An `io::Write` adapter that consults the failpoint `point` (with an
/// optional tag) before every `write` call on the inner writer:
///
/// - `err(E)` → the call fails with `E`, no bytes land;
/// - `shortwrite(N)` → a *torn* write: the first `N` bytes land in the
///   inner writer, then the call fails with ENOSPC (this models a tear
///   even under `write_all`, which would otherwise retry a short write);
/// - `delay`/`stall` → applied inline, then the write proceeds;
/// - `panic` → panics at the seam.
///
/// `flush` is passed through untouched.
pub struct FailpointWriter<W> {
    inner: W,
    point: String,
    tag: String,
}

impl<W: Write> FailpointWriter<W> {
    /// Wraps `inner`, evaluating `point` untagged on every write.
    pub fn new(inner: W, point: impl Into<String>) -> Self {
        Self { inner, point: point.into(), tag: String::new() }
    }

    /// Wraps `inner`, evaluating `point` with `tag` on every write.
    pub fn tagged(inner: W, point: impl Into<String>, tag: impl Into<String>) -> Self {
        Self { inner, point: point.into(), tag: tag.into() }
    }

    /// The wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// A shared reference to the wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for FailpointWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match crate::write_fate_tagged(&self.point, &self.tag) {
            WriteFate::Full => self.inner.write(buf),
            WriteFate::Fail(e) => Err(e),
            WriteFate::Short(n) => {
                let n = n.min(buf.len());
                self.inner.write_all(&buf[..n])?;
                self.inner.flush()?;
                Err(io::Error::from_raw_os_error(28))
            }
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallible_writer_lands_exactly_the_budget() {
        let image: Vec<u8> = (0..=255u8).collect();
        for max_chunk in [1usize, 7, usize::MAX] {
            for budget in [0usize, 1, 100, 255, 256] {
                let mut w = FallibleWriter::new(budget, max_chunk);
                let outcome = w.write_all(&image);
                assert_eq!(outcome.is_err(), budget < image.len(), "budget {budget}");
                if let Err(e) = outcome {
                    assert_eq!(e.raw_os_error(), Some(28));
                }
                assert_eq!(w.out, &image[..budget.min(image.len())], "budget {budget}");
            }
        }
    }

    #[test]
    fn failpoint_writer_tears_at_the_armed_point() {
        crate::arm("test.io.shim=shortwrite(3)").unwrap();
        let mut w = FailpointWriter::new(Vec::new(), "test.io.shim");
        let err = w.write_all(b"abcdefgh").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(w.get_ref(), b"abc", "exactly the torn prefix landed");
        crate::disarm("test.io.shim");
        let mut w = FailpointWriter::new(w.into_inner(), "test.io.shim");
        w.write_all(b"ijk").unwrap();
        assert_eq!(w.into_inner(), b"abcijk", "disarmed writer passes through");
    }
}
