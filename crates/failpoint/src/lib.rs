//! Deterministic, seeded fault injection for the bitline workspace.
//!
//! A *failpoint* is a named seam in crash-critical code — a journal
//! write, an fsync, a worker pickup, a socket read — where a fault can be
//! injected on demand. Disarmed (the default, and the only state the
//! figure suites ever run in) a failpoint is one cold atomic load; armed,
//! it draws from a per-point [`rand::rngs::SmallRng`] seeded from a
//! process-global seed, so any observed failure schedule is **replayable
//! from its seed**: same seed, same evaluation order, same faults.
//!
//! Points are armed per-process through the `BITLINE_FAILPOINTS`
//! environment variable (read once, lazily, or explicitly via
//! [`init_from_env`]), or programmatically with [`arm`] in tests:
//!
//! ```text
//! BITLINE_FAILPOINTS='journal.append.write=err(ENOSPC)@0.02;serve.conn.write=delay(50ms)@0.1;pool.worker=panic@1e-4'
//! ```
//!
//! Grammar (entries joined by `;`):
//!
//! ```text
//! entry  := point ('[' tag ']')? '=' action ('@' probability)?
//! action := 'err(' errno ')'        -- return an io::Error (named or raw errno)
//!         | 'shortwrite(' n ')'     -- a torn write: n bytes land, then an error
//!         | 'delay(' duration ')'   -- sleep, then proceed normally
//!         | 'panic'                 -- panic at the seam (isolation is the caller's story)
//!         | 'stall' ('(' duration ')')?  -- block until re-armed/disarmed (or the bound)
//! errno  := ENOSPC | EIO | EPIPE | EINTR | EAGAIN | ECONNRESET | <integer>
//! duration := float 'us' | 'ms' | 's'      (e.g. 50ms, 0.5s, 250us)
//! probability := float in [0, 1], default 1 (scientific notation fine: 1e-4)
//! ```
//!
//! An optional `[tag]` scopes an entry to matching [`eval_tagged`] calls:
//! the journal tags evaluations with its checkpoint directory name and the
//! daemon tags socket seams with the connection label, so a test can stall
//! exactly one connection (`serve.conn.write[conn-0]=stall`) or tear
//! exactly one journal without perturbing concurrent tests in the same
//! process. An entry with no tag matches every evaluation of its point.
//!
//! Every evaluation and fire is counted — internally (see [`snapshot`])
//! and as obs counters `failpoint.<point>.evaluated` /
//! `failpoint.<point>.fired` — and the draw happens under the registry
//! lock, so for a fixed seed the *number* of fires is a deterministic
//! function of the number of evaluations, independent of thread
//! interleaving. That is what lets the chaos harness assert fired counts
//! are identical at `jobs=1` and `jobs=N`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod io;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Return an `io::Error` built from this raw errno (e.g. 28 = ENOSPC).
    Err(i32),
    /// A torn write: the first `n` bytes reach the sink, then the call
    /// fails with ENOSPC. Outside write seams this degrades to a no-op.
    ShortWrite(usize),
    /// Sleep for the duration, then proceed normally.
    Delay(Duration),
    /// Panic at the seam; whatever isolation the caller has is exercised.
    Panic,
    /// Block until the point is re-armed or disarmed ([`stall_while`]
    /// watches the arm epoch), or until the optional bound elapses.
    Stall(Option<Duration>),
}

/// One parsed `point[tag]=action@prob` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmSpec {
    /// Failpoint name (e.g. `journal.append.write`).
    pub point: String,
    /// Optional tag filter; `None` matches every evaluation.
    pub tag: Option<String>,
    /// What to do when the entry fires.
    pub action: Action,
    /// Fire probability per matching evaluation, in `[0, 1]`.
    pub probability: f64,
}

/// Evaluation/fire counts for one armed point (see [`snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointStats {
    /// Failpoint name.
    pub name: String,
    /// Evaluations since the point was (re-)armed.
    pub evaluated: u64,
    /// Fires since the point was (re-)armed.
    pub fired: u64,
}

struct Entry {
    tag: Option<String>,
    action: Action,
    probability: f64,
    rng: SmallRng,
}

struct Point {
    entries: Vec<Entry>,
    evaluated: u64,
    fired: u64,
    obs_evaluated: std::sync::Arc<bitline_obs::Counter>,
    obs_fired: std::sync::Arc<bitline_obs::Counter>,
}

struct Registry {
    points: HashMap<String, Point>,
    seed: u64,
}

/// Number of armed points; the disarmed fast path is this single load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Bumped on every arm/disarm; [`stall_while`] watches it so a stalled
/// thread is released the moment the schedule changes.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Default process-global seed when neither `BITLINE_FAILPOINT_SEED` nor
/// [`set_seed`] supplied one.
pub const DEFAULT_SEED: u64 = 42;

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry { points: HashMap::new(), seed: DEFAULT_SEED }))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// FNV-1a 64-bit, used to derive per-entry seeds from point names so two
/// points armed under the same global seed draw independent schedules.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn entry_seed(global: u64, point: &str, tag: Option<&str>, index: usize) -> u64 {
    let label = format!("{point}[{}]#{index}", tag.unwrap_or(""));
    fnv64(label.as_bytes()) ^ global.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// ---------------------------------------------------------------------------
// Environment arming
// ---------------------------------------------------------------------------

fn env_init_cell() -> &'static OnceLock<Result<usize, String>> {
    static ENV_INIT: OnceLock<Result<usize, String>> = OnceLock::new();
    &ENV_INIT
}

fn ensure_env() {
    let cell = env_init_cell();
    if cell.get().is_some() {
        return;
    }
    let outcome = cell.get_or_init(init_from_env_inner);
    if let Err(e) = outcome {
        // Lazy path (no driver called init_from_env): warn once, run
        // disarmed rather than panicking inside arbitrary worker threads.
        eprintln!("[failpoint] ignoring invalid BITLINE_FAILPOINTS: {e}");
    }
}

fn init_from_env_inner() -> Result<usize, String> {
    if let Ok(seed) = std::env::var("BITLINE_FAILPOINT_SEED") {
        let seed = seed
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("BITLINE_FAILPOINT_SEED: invalid seed `{seed}`"))?;
        set_seed(seed);
    }
    match std::env::var("BITLINE_FAILPOINTS") {
        Err(_) => Ok(0),
        Ok(spec) if spec.trim().is_empty() => Ok(0),
        Ok(spec) => arm(&spec).map_err(|e| format!("BITLINE_FAILPOINTS: {e}")),
    }
}

/// Reads `BITLINE_FAILPOINT_SEED` and `BITLINE_FAILPOINTS` and arms the
/// configured points, exactly once per process (later calls return the
/// first outcome). Drivers call this at startup so a malformed spec fails
/// fast; code paths that evaluate points before any driver ran get the
/// same init lazily (with the error demoted to a one-time warning).
///
/// # Errors
///
/// The grammar violation, prefixed with the variable name.
pub fn init_from_env() -> Result<usize, String> {
    env_init_cell().get_or_init(init_from_env_inner).clone()
}

// ---------------------------------------------------------------------------
// Arming / disarming
// ---------------------------------------------------------------------------

/// Parses a `BITLINE_FAILPOINTS`-grammar spec and arms every entry,
/// *replacing* any prior configuration of the points it names (their
/// counters and RNGs reset). Returns the number of entries armed.
///
/// # Errors
///
/// A message naming the malformed entry and the accepted form.
pub fn arm(spec: &str) -> Result<usize, String> {
    let specs = parse_spec(spec)?;
    let count = specs.len();
    let mut reg = lock();
    let seed = reg.seed;
    // Replace named points wholesale so re-arming is a clean slate.
    for s in &specs {
        reg.points.remove(&s.point);
    }
    for spec in specs {
        let ArmSpec { point, tag, action, probability } = spec;
        let index = reg.points.get(&point).map_or(0, |p| p.entries.len());
        let rng = SmallRng::seed_from_u64(entry_seed(seed, &point, tag.as_deref(), index));
        let entry = Entry { tag, action, probability, rng };
        match reg.points.get_mut(&point) {
            Some(p) => p.entries.push(entry),
            None => {
                let obs = bitline_obs::registry();
                let p = Point {
                    entries: vec![entry],
                    evaluated: 0,
                    fired: 0,
                    obs_evaluated: obs.counter(&format!("failpoint.{point}.evaluated")),
                    obs_fired: obs.counter(&format!("failpoint.{point}.fired")),
                };
                reg.points.insert(point, p);
            }
        }
    }
    ACTIVE.store(reg.points.len(), Ordering::Release);
    drop(reg);
    EPOCH.fetch_add(1, Ordering::Release);
    Ok(count)
}

/// Disarms one point (all its entries). Returns whether it was armed.
pub fn disarm(point: &str) -> bool {
    let mut reg = lock();
    let removed = reg.points.remove(point).is_some();
    ACTIVE.store(reg.points.len(), Ordering::Release);
    drop(reg);
    EPOCH.fetch_add(1, Ordering::Release);
    removed
}

/// Disarms every point and releases every stalled thread.
pub fn disarm_all() {
    let mut reg = lock();
    reg.points.clear();
    ACTIVE.store(0, Ordering::Release);
    drop(reg);
    EPOCH.fetch_add(1, Ordering::Release);
}

/// Sets the process-global seed used when points are (re-)armed. Existing
/// armed points keep the RNG state they were armed with.
pub fn set_seed(seed: u64) {
    lock().seed = seed;
}

/// Number of currently armed points.
#[must_use]
pub fn active() -> usize {
    ACTIVE.load(Ordering::Acquire)
}

/// Fires of `point` since it was (re-)armed; 0 when disarmed.
#[must_use]
pub fn fired(point: &str) -> u64 {
    lock().points.get(point).map_or(0, |p| p.fired)
}

/// Evaluations of `point` since it was (re-)armed; 0 when disarmed.
#[must_use]
pub fn evaluated(point: &str) -> u64 {
    lock().points.get(point).map_or(0, |p| p.evaluated)
}

/// Counters for every armed point, sorted by name.
#[must_use]
pub fn snapshot() -> Vec<PointStats> {
    let reg = lock();
    let mut out: Vec<PointStats> = reg
        .points
        .iter()
        .map(|(name, p)| PointStats { name: name.clone(), evaluated: p.evaluated, fired: p.fired })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// Evaluates `point` with no tag: only untagged entries can fire.
#[must_use]
pub fn eval(point: &str) -> Option<Action> {
    eval_tagged(point, "")
}

/// Evaluates `point` for a caller identified by `tag`. Entries armed with
/// a tag fire only when it equals `tag`; untagged entries always match.
/// Returns the fired action, or `None` (the overwhelmingly common case:
/// disarmed costs one atomic load).
#[must_use]
pub fn eval_tagged(point: &str, tag: &str) -> Option<Action> {
    ensure_env();
    if ACTIVE.load(Ordering::Acquire) == 0 {
        return None;
    }
    let mut reg = lock();
    let p = reg.points.get_mut(point)?;
    p.evaluated += 1;
    p.obs_evaluated.incr();
    let mut fired_action = None;
    for entry in &mut p.entries {
        if let Some(t) = &entry.tag {
            if t != tag {
                continue;
            }
        }
        let fire = if entry.probability >= 1.0 {
            true
        } else if entry.probability <= 0.0 {
            false
        } else {
            entry.rng.gen_bool(entry.probability)
        };
        if fire {
            fired_action = Some(entry.action.clone());
            break;
        }
    }
    if fired_action.is_some() {
        p.fired += 1;
        p.obs_fired.incr();
    }
    fired_action
}

/// Blocks until the failpoint schedule changes (any [`arm`]/[`disarm`]),
/// `cancelled` returns true, or the optional `limit` elapses. This is the
/// `stall` action's wait loop, factored out so seams can pass their own
/// cancellation (e.g. "this connection was condemned").
pub fn stall_while(limit: Option<Duration>, cancelled: impl Fn() -> bool) {
    let started = Instant::now();
    let epoch0 = EPOCH.load(Ordering::Acquire);
    loop {
        if cancelled() {
            return;
        }
        if let Some(limit) = limit {
            if started.elapsed() >= limit {
                return;
            }
        }
        if EPOCH.load(Ordering::Acquire) != epoch0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The outcome a write seam should apply (see [`write_fate`]).
#[derive(Debug)]
pub enum WriteFate {
    /// No fault: perform the write normally.
    Full,
    /// Torn write: land at most this many bytes, then fail with ENOSPC.
    Short(usize),
    /// Fail the write with this error without landing any bytes.
    Fail(std::io::Error),
}

/// Evaluates a write seam: delay/stall are applied inline (stall with no
/// cancellation), err/short-write map onto [`WriteFate`], panic panics.
#[must_use]
pub fn write_fate(point: &str) -> WriteFate {
    write_fate_tagged(point, "")
}

/// [`write_fate`] with a caller tag.
#[must_use]
pub fn write_fate_tagged(point: &str, tag: &str) -> WriteFate {
    match eval_tagged(point, tag) {
        None => WriteFate::Full,
        Some(Action::Err(errno)) => WriteFate::Fail(std::io::Error::from_raw_os_error(errno)),
        Some(Action::ShortWrite(n)) => WriteFate::Short(n),
        Some(Action::Delay(d)) => {
            std::thread::sleep(d);
            WriteFate::Full
        }
        Some(Action::Stall(limit)) => {
            stall_while(limit, || false);
            WriteFate::Full
        }
        Some(Action::Panic) => panic!("failpoint `{point}` fired: panic"),
    }
}

/// Evaluates a fallible non-write seam (fsync, record, read): `err` maps
/// to `Err`, delay/stall apply inline, panic panics, short-write is
/// meaningless here and degrades to `Ok`.
///
/// # Errors
///
/// The injected `io::Error` when an `err` entry fires.
pub fn io_result(point: &str) -> std::io::Result<()> {
    io_result_tagged(point, "")
}

/// [`io_result`] with a caller tag.
///
/// # Errors
///
/// The injected `io::Error` when an `err` entry fires.
pub fn io_result_tagged(point: &str, tag: &str) -> std::io::Result<()> {
    match write_fate_tagged(point, tag) {
        WriteFate::Full | WriteFate::Short(_) => Ok(()),
        WriteFate::Fail(e) => Err(e),
    }
}

/// Evaluates an infallible seam (worker pickup, segment materialisation):
/// delay/stall apply inline, panic panics, err/short-write degrade to a
/// no-op (the seam has no error channel to carry them).
pub fn hit(point: &str) {
    hit_tagged(point, "");
}

/// [`hit`] with a caller tag.
pub fn hit_tagged(point: &str, tag: &str) {
    match eval_tagged(point, tag) {
        None | Some(Action::Err(_)) | Some(Action::ShortWrite(_)) => {}
        Some(Action::Delay(d)) => std::thread::sleep(d),
        Some(Action::Stall(limit)) => stall_while(limit, || false),
        Some(Action::Panic) => panic!("failpoint `{point}` fired: panic"),
    }
}

/// Evaluates a failpoint at an infallible seam: `failpoint!("name")` or
/// `failpoint!("name", tag)`. Expands to [`hit`] / [`hit_tagged`]; seams
/// with an error or length channel use [`io_result`] / [`write_fate`]
/// directly.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        $crate::hit($name)
    };
    ($name:expr, $tag:expr) => {
        $crate::hit_tagged($name, $tag)
    };
}

// ---------------------------------------------------------------------------
// Grammar
// ---------------------------------------------------------------------------

/// Parses a full `BITLINE_FAILPOINTS` spec (entries joined by `;`,
/// empties ignored) without arming anything.
///
/// # Errors
///
/// A message naming the malformed entry and the accepted form.
pub fn parse_spec(spec: &str) -> Result<Vec<ArmSpec>, String> {
    let mut out = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        out.push(parse_entry(entry)?);
    }
    Ok(out)
}

fn parse_entry(entry: &str) -> Result<ArmSpec, String> {
    let (lhs, rhs) =
        entry.split_once('=').ok_or_else(|| format!("`{entry}`: expected point=action[@prob]"))?;
    let lhs = lhs.trim();
    let (point, tag) = match lhs.split_once('[') {
        None => (lhs, None),
        Some((point, rest)) => {
            let tag =
                rest.strip_suffix(']').ok_or_else(|| format!("`{lhs}`: unclosed tag bracket"))?;
            if tag.is_empty() {
                return Err(format!("`{lhs}`: empty tag (drop the brackets to match all)"));
            }
            (point.trim(), Some(tag.to_owned()))
        }
    };
    if point.is_empty() {
        return Err(format!("`{entry}`: empty point name"));
    }
    let rhs = rhs.trim();
    let (action_str, probability) = match rhs.rsplit_once('@') {
        // `@` only splits a probability when what follows parses as one;
        // this keeps the grammar open to `@` inside future action args.
        Some((a, p)) => match p.trim().parse::<f64>() {
            Ok(prob) => {
                if !(0.0..=1.0).contains(&prob) {
                    return Err(format!("`{entry}`: probability {prob} not in [0, 1]"));
                }
                (a.trim(), prob)
            }
            Err(_) => return Err(format!("`{entry}`: invalid probability `{}`", p.trim())),
        },
        None => (rhs, 1.0),
    };
    let action = parse_action(action_str).map_err(|e| format!("`{entry}`: {e}"))?;
    Ok(ArmSpec { point: point.to_owned(), tag, action, probability })
}

fn parse_action(s: &str) -> Result<Action, String> {
    if s == "panic" {
        return Ok(Action::Panic);
    }
    if s == "stall" {
        return Ok(Action::Stall(None));
    }
    let call = |name: &str| -> Option<&str> {
        s.strip_prefix(name).and_then(|r| r.strip_prefix('(')).and_then(|r| r.strip_suffix(')'))
    };
    if let Some(arg) = call("err") {
        return Ok(Action::Err(parse_errno(arg.trim())?));
    }
    if let Some(arg) = call("shortwrite") {
        let n = arg
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("shortwrite wants a byte count, got `{arg}`"))?;
        return Ok(Action::ShortWrite(n));
    }
    if let Some(arg) = call("delay") {
        return Ok(Action::Delay(parse_duration(arg.trim())?));
    }
    if let Some(arg) = call("stall") {
        return Ok(Action::Stall(Some(parse_duration(arg.trim())?)));
    }
    Err(format!(
        "unknown action `{s}` (want err(E), shortwrite(N), delay(D), panic, stall or stall(D))"
    ))
}

fn parse_errno(s: &str) -> Result<i32, String> {
    match s {
        "ENOSPC" => Ok(28),
        "EIO" => Ok(5),
        "EPIPE" => Ok(32),
        "EINTR" => Ok(4),
        "EAGAIN" => Ok(11),
        "ECONNRESET" => Ok(104),
        _ => s.parse::<i32>().map_err(|_| {
            format!("unknown errno `{s}` (want ENOSPC, EIO, EPIPE, EINTR, EAGAIN, ECONNRESET or a number)")
        }),
    }
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let (value, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| format!("duration `{s}` needs a unit (us, ms or s)"))?;
    let value: f64 =
        value.trim().parse().map_err(|_| format!("invalid duration value `{value}`"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("duration `{s}` must be finite and non-negative"));
    }
    let micros = match unit {
        "us" => value,
        "ms" => value * 1_000.0,
        "s" => value * 1_000_000.0,
        _ => return Err(format!("duration unit `{unit}` (want us, ms or s)")),
    };
    Ok(Duration::from_micros(micros as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global; tests that arm points use
    /// unique names so parallel test threads cannot collide.
    #[test]
    fn grammar_parses_every_action_class() {
        let specs = parse_spec(
            "journal.append.write=err(ENOSPC)@0.02; serve.conn.write=delay(50ms)@0.1;\
             pool.worker=panic@1e-4;a.b=shortwrite(12);c.d[conn-3]=stall(2s)@0.5;e.f=stall",
        )
        .unwrap();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].action, Action::Err(28));
        assert!((specs[0].probability - 0.02).abs() < 1e-12);
        assert_eq!(specs[1].action, Action::Delay(Duration::from_millis(50)));
        assert_eq!(specs[2].action, Action::Panic);
        assert!((specs[2].probability - 1e-4).abs() < 1e-18);
        assert_eq!(specs[3].action, Action::ShortWrite(12));
        assert!((specs[3].probability - 1.0).abs() < 1e-12);
        assert_eq!(specs[4].tag.as_deref(), Some("conn-3"));
        assert_eq!(specs[4].action, Action::Stall(Some(Duration::from_secs(2))));
        assert_eq!(specs[5].action, Action::Stall(None));
    }

    #[test]
    fn grammar_rejects_malformed_entries() {
        for bad in [
            "nameonly",
            "p=explode",
            "p=err(EWHAT)",
            "p=err(ENOSPC)@1.5",
            "p=err(ENOSPC)@soon",
            "p=delay(50)",
            "p=delay(50fortnights)",
            "p[=stall",
            "p[]=stall",
            "=panic",
            "p=shortwrite(lots)",
        ] {
            assert!(parse_spec(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn disarmed_points_evaluate_to_none() {
        assert_eq!(eval("test.never.armed"), None);
        assert_eq!(fired("test.never.armed"), 0);
    }

    #[test]
    fn probability_one_always_fires_and_zero_never_does() {
        arm("test.p1.always=err(EIO)@1;test.p1.never=err(EIO)@0").unwrap();
        for _ in 0..16 {
            assert_eq!(eval("test.p1.always"), Some(Action::Err(5)));
            assert_eq!(eval("test.p1.never"), None);
        }
        assert_eq!(fired("test.p1.always"), 16);
        assert_eq!(evaluated("test.p1.never"), 16);
        assert_eq!(fired("test.p1.never"), 0);
        disarm("test.p1.always");
        disarm("test.p1.never");
    }

    #[test]
    fn seeded_schedules_replay_exactly() {
        set_seed(0xDEAD_BEEF);
        arm("test.replay.point=err(ENOSPC)@0.3").unwrap();
        let first: Vec<bool> = (0..64).map(|_| eval("test.replay.point").is_some()).collect();
        let fired_first = fired("test.replay.point");
        // Re-arming under the same seed resets the RNG: same schedule.
        arm("test.replay.point=err(ENOSPC)@0.3").unwrap();
        let second: Vec<bool> = (0..64).map(|_| eval("test.replay.point").is_some()).collect();
        assert_eq!(first, second, "same seed must replay the same schedule");
        assert_eq!(fired("test.replay.point"), fired_first);
        assert!(fired_first > 0 && fired_first < 64, "p=0.3 over 64 draws fires some");
        // A different seed gives a different schedule.
        set_seed(1);
        arm("test.replay.point=err(ENOSPC)@0.3").unwrap();
        let third: Vec<bool> = (0..64).map(|_| eval("test.replay.point").is_some()).collect();
        assert_ne!(first, third, "a different seed must reshuffle the schedule");
        disarm("test.replay.point");
        set_seed(DEFAULT_SEED);
    }

    #[test]
    fn tags_scope_entries_to_matching_callers() {
        arm("test.tags.point[conn-1]=err(EPIPE)").unwrap();
        assert_eq!(eval_tagged("test.tags.point", "conn-0"), None);
        assert_eq!(eval_tagged("test.tags.point", "conn-1"), Some(Action::Err(32)));
        assert_eq!(eval("test.tags.point"), None, "untagged eval must not match a tagged entry");
        // An untagged entry matches everything.
        arm("test.tags.point=delay(1us)").unwrap();
        assert!(eval_tagged("test.tags.point", "anything").is_some());
        disarm("test.tags.point");
    }

    #[test]
    fn stall_releases_on_disarm() {
        arm("test.stall.point=stall").unwrap();
        let t = std::thread::spawn(|| {
            let started = Instant::now();
            match eval("test.stall.point") {
                Some(Action::Stall(limit)) => stall_while(limit, || false),
                other => panic!("expected stall, got {other:?}"),
            }
            started.elapsed()
        });
        std::thread::sleep(Duration::from_millis(30));
        disarm("test.stall.point");
        let held = t.join().expect("stalled thread");
        assert!(held >= Duration::from_millis(25), "stall held for {held:?}");
    }

    #[test]
    fn fired_counts_mirror_to_obs() {
        let obs = bitline_obs::registry().counter("failpoint.test.obs.point.fired");
        let before = obs.get();
        arm("test.obs.point=err(EIO)@1").unwrap();
        for _ in 0..5 {
            let _ = eval("test.obs.point");
        }
        assert_eq!(obs.get() - before, 5);
        assert_eq!(fired("test.obs.point"), 5);
        assert_eq!(snapshot().iter().find(|p| p.name == "test.obs.point").unwrap().fired, 5);
        disarm("test.obs.point");
    }

    #[test]
    fn write_fate_and_io_result_map_actions() {
        arm("test.fate.err=err(ENOSPC);test.fate.short=shortwrite(7)").unwrap();
        match write_fate("test.fate.err") {
            WriteFate::Fail(e) => assert_eq!(e.raw_os_error(), Some(28)),
            other => panic!("expected fail, got {other:?}"),
        }
        match write_fate("test.fate.short") {
            WriteFate::Short(7) => {}
            other => panic!("expected short(7), got {other:?}"),
        }
        assert!(io_result("test.fate.err").is_err());
        assert!(io_result("test.fate.short").is_ok(), "short-write degrades to Ok off write seams");
        disarm("test.fate.err");
        disarm("test.fate.short");
    }
}
