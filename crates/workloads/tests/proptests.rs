//! Property-based tests for the synthetic workload generators.

use proptest::prelude::*;

use bitline_trace::TraceSource;
use bitline_workloads::{suite, CODE_BASE, DATA_BASE, STACK_BASE};

fn benchmark_names() -> impl Strategy<Value = &'static str> {
    prop::sample::select(suite::names())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Control flow is always consistent: each instruction's pc equals the
    /// previous instruction's next_pc, for any benchmark and seed.
    #[test]
    fn control_flow_consistent(name in benchmark_names(), seed in any::<u64>()) {
        let mut w = suite::by_name(name).unwrap().build(seed);
        let mut prev = w.next_instr();
        for _ in 0..2_000 {
            let i = w.next_instr();
            prop_assert_eq!(i.pc, prev.next_pc(), "discontinuity in {}", name);
            prev = i;
        }
    }

    /// Memory references stay inside the declared segments and bases never
    /// exceed effective addresses.
    #[test]
    fn memory_stays_in_segments(name in benchmark_names(), seed in any::<u64>()) {
        let spec = suite::by_name(name).unwrap();
        let mut w = spec.build(seed);
        for _ in 0..2_000 {
            let i = w.next_instr();
            prop_assert!(i.pc >= CODE_BASE && i.pc < DATA_BASE, "{}: pc {:#x}", name, i.pc);
            if let Some(m) = i.mem {
                let heap = (DATA_BASE..DATA_BASE + spec.footprint_bytes + 8192).contains(&m.addr);
                let stack = (STACK_BASE..STACK_BASE + 8192).contains(&m.addr);
                prop_assert!(heap || stack, "{}: addr {:#x}", name, m.addr);
                prop_assert!(m.base <= m.addr);
                prop_assert!(m.addr - m.base < 4096, "displacement bounded");
            }
        }
    }

    /// Determinism: two generators with the same seed agree arbitrarily far
    /// into the stream.
    #[test]
    fn deterministic(name in benchmark_names(), seed in any::<u64>(), skip in 0usize..5_000) {
        let spec = suite::by_name(name).unwrap();
        let mut a = spec.build(seed);
        let mut b = spec.build(seed);
        for _ in 0..skip {
            let _ = a.next_instr();
            let _ = b.next_instr();
        }
        for _ in 0..50 {
            prop_assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    /// Every instruction with a destination register writes a register in
    /// the architected range, and memory ops always carry a reference.
    #[test]
    fn well_formed_instructions(name in benchmark_names(), seed in any::<u64>()) {
        let mut w = suite::by_name(name).unwrap().build(seed);
        for _ in 0..2_000 {
            let i = w.next_instr();
            if let Some(d) = i.dest {
                prop_assert!((d as usize) < bitline_trace::NUM_REGS);
            }
            if i.kind.is_mem() {
                prop_assert!(i.mem.is_some());
            }
            if i.kind.is_control() {
                prop_assert!(i.branch.is_some());
            }
        }
    }
}
