//! The sixteen synthetic benchmarks of the paper's evaluation.
//!
//! Parameter choices encode the qualitative behaviour the paper reports:
//!
//! * **ammp, art** — large streaming FP footprints that thrash the L1
//!   ("receive virtually no benefit from having L1 caches", Section 6.4);
//! * **mcf, em3d, treeadd** — big pointer-chasing footprints, high miss
//!   ratios;
//! * **health** — high miss ratio but a *small, concentrated* hot region
//!   ("small footprint and high subarray reference locality", Section 6.4);
//! * **gcc, vortex** — instruction footprints larger than the 32 KB
//!   I-cache (the applications with the widest gated-vs-resizable gap in
//!   I-caches, Section 6.4);
//! * **mesa, wupwise** — regular loop nests with predictable branches and
//!   compact hot data;
//! * **bzip2, vpr, bh, bisort, tsp, equake** — intermediate mixes.

use crate::spec::{AccessMix, InstrMix, Suite, WorkloadSpec};

macro_rules! workload {
    ($name:literal, $suite:ident, fp: $fp:expr, hot: $hot:expr, phase: $phase:expr,
     mix: [$h:expr, $s:expr, $c:expr, $k:expr],
     imix: [$ld:expr, $st:expr, $br:expr, $fpx:expr, $mul:expr],
     unpred: $u:expr, loops: $loops:expr, body: $body:expr, iters: $it:expr,
     active: $act:expr) => {
        WorkloadSpec {
            name: $name,
            suite: Suite::$suite,
            footprint_bytes: $fp,
            hot_bytes: $hot,
            phase_instrs: $phase,
            access_mix: AccessMix { hot: $h, stream: $s, chase: $c, stack: $k },
            instr_mix: InstrMix { load: $ld, store: $st, branch: $br, fp: $fpx, mul: $mul },
            unpredictable_branch_frac: $u,
            num_loops: $loops,
            mean_body_len: $body,
            mean_iters: $it,
            active_loop_frac: $act,
        }
    };
}

/// All sixteen benchmark specs, in the paper's (alphabetical) figure order.
#[must_use]
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        workload!("ammp", Spec2000, fp: 2 << 20, hot: 8 << 10, phase: 40_000,
            mix: [0.25, 0.55, 0.10, 0.10], imix: [0.28, 0.10, 0.12, 0.28, 0.02],
            unpred: 0.03, loops: 24, body: 40, iters: 30.0, active: 0.5),
        workload!("art", Spec2000, fp: 4 << 20, hot: 4 << 10, phase: 50_000,
            mix: [0.15, 0.70, 0.05, 0.10], imix: [0.30, 0.08, 0.10, 0.33, 0.01],
            unpred: 0.04, loops: 12, body: 30, iters: 100.0, active: 0.5),
        workload!("bh", Olden, fp: 256 << 10, hot: 4 << 10, phase: 30_000,
            mix: [0.45, 0.05, 0.30, 0.20], imix: [0.30, 0.10, 0.16, 0.14, 0.02],
            unpred: 0.05, loops: 10, body: 25, iters: 8.0, active: 0.8),
        workload!("bisort", Olden, fp: 192 << 10, hot: 4 << 10, phase: 25_000,
            mix: [0.42, 0.00, 0.38, 0.20], imix: [0.28, 0.12, 0.18, 0.00, 0.01],
            unpred: 0.03, loops: 8, body: 20, iters: 5.0, active: 0.8),
        workload!("bzip2", Spec2000, fp: 384 << 10, hot: 16 << 10, phase: 45_000,
            mix: [0.52, 0.22, 0.10, 0.16], imix: [0.26, 0.12, 0.15, 0.00, 0.02],
            unpred: 0.03, loops: 30, body: 35, iters: 40.0, active: 0.4),
        workload!("em3d", Olden, fp: 768 << 10, hot: 8 << 10, phase: 35_000,
            mix: [0.30, 0.15, 0.42, 0.13], imix: [0.32, 0.08, 0.14, 0.10, 0.01],
            unpred: 0.08, loops: 6, body: 22, iters: 50.0, active: 0.9),
        workload!("equake", Spec2000, fp: 1 << 20, hot: 16 << 10, phase: 40_000,
            mix: [0.38, 0.42, 0.08, 0.12], imix: [0.30, 0.10, 0.12, 0.28, 0.02],
            unpred: 0.05, loops: 28, body: 45, iters: 60.0, active: 0.35),
        workload!("gcc", Spec2000, fp: 640 << 10, hot: 24 << 10, phase: 30_000,
            mix: [0.50, 0.12, 0.20, 0.18], imix: [0.25, 0.12, 0.18, 0.02, 0.02],
            unpred: 0.05, loops: 400, body: 30, iters: 6.0, active: 0.25),
        workload!("health", Olden, fp: 512 << 10, hot: 2 << 10, phase: 30_000,
            mix: [0.52, 0.00, 0.36, 0.12], imix: [0.30, 0.10, 0.16, 0.02, 0.01],
            unpred: 0.04, loops: 6, body: 18, iters: 10.0, active: 0.9),
        workload!("mcf", Spec2000, fp: 2 << 20, hot: 4 << 10, phase: 35_000,
            mix: [0.22, 0.08, 0.58, 0.12], imix: [0.32, 0.08, 0.16, 0.00, 0.01],
            unpred: 0.05, loops: 10, body: 24, iters: 15.0, active: 0.7),
        workload!("mesa", Spec2000, fp: 192 << 10, hot: 24 << 10, phase: 60_000,
            mix: [0.62, 0.18, 0.04, 0.16], imix: [0.26, 0.12, 0.10, 0.28, 0.03],
            unpred: 0.04, loops: 50, body: 50, iters: 80.0, active: 0.3),
        workload!("treeadd", Olden, fp: 512 << 10, hot: 8 << 10, phase: 30_000,
            mix: [0.25, 0.10, 0.52, 0.13], imix: [0.30, 0.06, 0.15, 0.00, 0.00],
            unpred: 0.03, loops: 3, body: 14, iters: 4.0, active: 1.0),
        workload!("tsp", Olden, fp: 320 << 10, hot: 8 << 10, phase: 30_000,
            mix: [0.42, 0.05, 0.35, 0.18], imix: [0.28, 0.08, 0.15, 0.14, 0.02],
            unpred: 0.04, loops: 6, body: 26, iters: 12.0, active: 0.9),
        workload!("vortex", Spec2000, fp: 512 << 10, hot: 32 << 10, phase: 35_000,
            mix: [0.52, 0.08, 0.22, 0.18], imix: [0.28, 0.14, 0.16, 0.00, 0.01],
            unpred: 0.08, loops: 300, body: 28, iters: 8.0, active: 0.3),
        workload!("vpr", Spec2000, fp: 320 << 10, hot: 16 << 10, phase: 40_000,
            mix: [0.50, 0.12, 0.22, 0.16], imix: [0.28, 0.10, 0.16, 0.08, 0.02],
            unpred: 0.05, loops: 70, body: 32, iters: 15.0, active: 0.35),
        workload!("wupwise", Spec2000, fp: 3 << 19, hot: 32 << 10, phase: 60_000,
            mix: [0.35, 0.50, 0.05, 0.10], imix: [0.30, 0.10, 0.08, 0.32, 0.04],
            unpred: 0.03, loops: 10, body: 60, iters: 200.0, active: 0.6),
    ]
}

/// Looks up one benchmark spec by its paper name.
///
/// # Examples
///
/// ```
/// assert!(bitline_workloads::suite::by_name("gcc").is_some());
/// assert!(bitline_workloads::suite::by_name("linpack").is_none());
/// ```
#[must_use]
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

/// The benchmark names, in figure order.
#[must_use]
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|w| w.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_benchmarks_matching_the_paper() {
        let names = names();
        assert_eq!(names.len(), 16);
        let expected = [
            "ammp", "art", "bh", "bisort", "bzip2", "em3d", "equake", "gcc", "health", "mcf",
            "mesa", "treeadd", "tsp", "vortex", "vpr", "wupwise",
        ];
        assert_eq!(names, expected);
    }

    #[test]
    fn names_are_unique() {
        let mut names = names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn suites_are_split_ten_six() {
        let all = all();
        let spec = all.iter().filter(|w| w.suite == Suite::Spec2000).count();
        let olden = all.iter().filter(|w| w.suite == Suite::Olden).count();
        assert_eq!((spec, olden), (10, 6));
    }

    #[test]
    fn big_code_benchmarks_exceed_the_icache() {
        for name in ["gcc", "vortex"] {
            let w = by_name(name).unwrap();
            assert!(w.code_bytes() > 32 << 10, "{name}: {} B of code", w.code_bytes());
        }
        // Olden kernels are tiny.
        for name in ["treeadd", "health"] {
            let w = by_name(name).unwrap();
            assert!(w.code_bytes() < 4 << 10, "{name}: {} B of code", w.code_bytes());
        }
    }

    #[test]
    fn thrashing_benchmarks_have_multi_megabyte_footprints() {
        for name in ["ammp", "art", "mcf"] {
            assert!(by_name(name).unwrap().footprint_bytes >= 2 << 20, "{name}");
        }
    }

    #[test]
    fn every_spec_builds_and_generates() {
        use bitline_trace::TraceSource;
        for spec in all() {
            let mut w = spec.build(11);
            for _ in 0..200 {
                let _ = w.next_instr();
            }
            assert_eq!(w.name(), spec.name);
        }
    }
}
