//! The synthetic trace generator.
//!
//! A workload is a set of loop bodies laid out contiguously in a synthetic
//! code segment. Execution walks a body slot by slot, re-enters it at the
//! back-edge with probability `1 - 1/mean_iters`, and on exit jumps to
//! another loop inside the current phase's *active window*. Each slot has a
//! fixed instruction class and, for memory slots, a fixed access pattern —
//! mirroring how a static load instruction in real code has a
//! characteristic behaviour. This static structure is what gives the
//! generated streams realistic instruction-cache locality and branch
//! predictability.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use bitline_trace::{BranchInfo, Instr, InstrKind, MemRef, Reg, TraceSource};

use crate::spec::{AccessMix, WorkloadSpec};
use crate::{CODE_BASE, DATA_BASE, STACK_BASE};

/// Data access pattern bound to one static memory slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Hot,
    Stream,
    Chase,
    Stack,
}

/// One static instruction slot in a loop body.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Alu,
    Mul,
    Fp,
    Load(Pattern),
    Store(Pattern),
    /// Forward conditional branch. `bias` is the probability of being
    /// taken; unpredictable slots re-roll a fair coin every execution.
    /// `skip` is the static number of slots the taken path jumps over.
    Cond {
        bias: f64,
        unpredictable: bool,
        skip: u8,
    },
    /// Loop back-edge: taken (to slot 0) with probability `p_back`.
    Back {
        p_back: f64,
    },
    /// Exit jump to the next loop (target chosen dynamically).
    Exit,
}

#[derive(Debug, Clone)]
struct LoopBody {
    base_pc: u64,
    slots: Vec<Slot>,
    /// Preferred next loop (a call site usually targets the same callee,
    /// which lets the BTB predict the transition).
    successor: usize,
}

/// Deterministic synthetic workload trace (see module docs).
///
/// # Examples
///
/// ```
/// use bitline_trace::TraceSource;
/// use bitline_workloads::suite;
///
/// let spec = suite::by_name("gcc").unwrap();
/// let mut a = spec.build(7);
/// let mut b = spec.build(7);
/// for _ in 0..100 {
///     assert_eq!(a.next_instr(), b.next_instr());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: WorkloadSpec,
    rng: SmallRng,
    program: Vec<LoopBody>,
    cur_loop: usize,
    slot: usize,
    instrs_emitted: u64,
    // Data-side state.
    hot_base: u64,
    stream_ptr: u64,
    stack_frame: u64,
    /// Recently chased node addresses; pointer codes revisit hot nodes.
    chase_ring: [u64; 64],
    chase_head: usize,
    // Phase state: active loops are program[active_lo..active_hi].
    active_lo: usize,
    active_hi: usize,
    // Register dependence ring: recently written destinations.
    recent_dests: [Reg; 16],
    ring_head: usize,
    next_dest: Reg,
}

impl SyntheticWorkload {
    /// Builds the generator; equivalent to [`WorkloadSpec::build`].
    ///
    /// # Panics
    ///
    /// Panics if the spec's mixes are out of range (see
    /// [`crate::InstrMix`]) or its structural parameters are zero.
    #[must_use]
    pub fn new(spec: WorkloadSpec, seed: u64) -> SyntheticWorkload {
        spec.instr_mix.validate();
        assert!(spec.num_loops > 0 && spec.mean_body_len >= 4, "degenerate program shape");
        assert!(spec.footprint_bytes >= 4096, "footprint must be at least one page");
        assert!(spec.phase_instrs > 0, "phases must be non-empty");
        let mix = spec.access_mix.normalized();
        // Structure and dynamics draw from independent streams so that
        // changing dynamic parameters does not reshape the static program.
        let mut build_rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let program = build_program(&spec, mix, &mut build_rng);
        let mut w = SyntheticWorkload {
            rng: SmallRng::seed_from_u64(seed),
            cur_loop: 0,
            slot: 0,
            instrs_emitted: 0,
            hot_base: DATA_BASE,
            stream_ptr: DATA_BASE,
            stack_frame: STACK_BASE,
            chase_ring: [DATA_BASE; 64],
            chase_head: 0,
            active_lo: 0,
            active_hi: program.len(),
            recent_dests: [1; 16],
            ring_head: 0,
            next_dest: 8,
            program,
            spec,
        };
        w.enter_phase();
        w
    }

    /// The spec this generator was built from.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn instrs_emitted(&self) -> u64 {
        self.instrs_emitted
    }

    fn enter_phase(&mut self) {
        // Slide the hot region by a quarter of its size (program phases
        // shift working sets gradually, not wholesale), wrapping the
        // footprint. The slide is 512 B-aligned so it crosses subarray
        // boundaries.
        let span = self.spec.footprint_bytes.saturating_sub(self.spec.hot_bytes).max(512);
        self.hot_base = if self.rng.gen_bool(0.25) {
            // Major phase change: relocate the working set entirely.
            DATA_BASE + (self.rng.gen_range(0..span) & !511)
        } else {
            let slide = (self.spec.hot_bytes / 4).max(512) & !511;
            DATA_BASE + (self.hot_base - DATA_BASE + slide) % span
        };
        // Move the stack frame a little (call depth changes).
        self.stack_frame = STACK_BASE + (self.rng.gen_range(0..8u64)) * 256;
        // Pick the active code window.
        let n = self.program.len();
        let active = ((n as f64 * self.spec.active_loop_frac).ceil() as usize).clamp(1, n);
        let lo = self.rng.gen_range(0..=(n - active));
        self.active_lo = lo;
        self.active_hi = lo + active;
        if !(self.active_lo..self.active_hi).contains(&self.cur_loop) {
            self.cur_loop = self.active_lo;
            self.slot = 0;
        }
    }

    fn pick_next_loop(&mut self) -> usize {
        let preferred = self.program[self.cur_loop].successor;
        if self.rng.gen_bool(0.7) && (self.active_lo..self.active_hi).contains(&preferred) {
            return preferred;
        }
        let range = self.active_hi - self.active_lo;
        self.active_lo + self.rng.gen_range(0..range)
    }

    fn data_address(&mut self, pattern: Pattern) -> u64 {
        match pattern {
            Pattern::Hot => {
                // Quadratic skew: the head of the hot region is touched far
                // more often than its tail (zipf-like reuse), so the truly
                // hot lines stay resident under LRU.
                let r: f64 = self.rng.gen();
                let skew = r * r * r * r;
                let off = ((skew * self.spec.hot_bytes.max(8) as f64) as u64) & !7;
                self.hot_base + off
            }
            Pattern::Stream => {
                let a = self.stream_ptr;
                self.stream_ptr += 8;
                if self.stream_ptr >= DATA_BASE + self.spec.footprint_bytes {
                    self.stream_ptr = DATA_BASE;
                }
                a
            }
            Pattern::Chase => {
                // Pointer codes revisit recently touched nodes (parents,
                // list heads) slightly more often than they discover new
                // ones.
                if self.rng.gen_bool(0.70) {
                    self.chase_ring[self.rng.gen_range(0..self.chase_ring.len())]
                } else {
                    let a = DATA_BASE + (self.rng.gen_range(0..self.spec.footprint_bytes) & !7);
                    self.chase_ring[self.chase_head] = a;
                    self.chase_head = (self.chase_head + 1) % self.chase_ring.len();
                    a
                }
            }
            Pattern::Stack => self.stack_frame + (self.rng.gen_range(0..1024u64) & !7),
        }
    }

    /// Displacement distribution calibrated so that predecoding accuracy
    /// matches Section 6.3: ~80% at 1 KB subarrays (512 B address
    /// granularity), ~61% at line-sized subarrays.
    fn displacement(&mut self) -> u64 {
        let r: f64 = self.rng.gen();
        if r < 0.72 {
            self.rng.gen_range(0..=8)
        } else if r < 0.84 {
            self.rng.gen_range(8..128)
        } else {
            self.rng.gen_range(128..4096)
        }
    }

    fn mem_ref(&mut self, pattern: Pattern) -> MemRef {
        let addr = self.data_address(pattern);
        let disp = self.displacement();
        MemRef { addr, base: addr.saturating_sub(disp), size: 8 }
    }

    fn alloc_dest(&mut self) -> Reg {
        let d = self.next_dest;
        self.next_dest = if self.next_dest >= 47 { 8 } else { self.next_dest + 1 };
        self.recent_dests[self.ring_head] = d;
        self.ring_head = (self.ring_head + 1) % self.recent_dests.len();
        d
    }

    /// Picks a source register. A minority of operands chain tightly on
    /// very recent results (the critical path); the rest reach much further
    /// back, giving the instruction window the independent strands real
    /// programs expose (ILP well above 1 on an 8-wide core).
    fn pick_src(&mut self) -> Reg {
        let back = if self.rng.gen_bool(0.3) {
            1 + (self.rng.gen::<u8>() % 3) as usize // tight chain
        } else {
            4 + (self.rng.gen::<u8>() % 12) as usize // far, usually ready
        };
        let idx = (self.ring_head + self.recent_dests.len() - back) % self.recent_dests.len();
        self.recent_dests[idx]
    }
}

impl TraceSource for SyntheticWorkload {
    fn next_instr(&mut self) -> Instr {
        if self.instrs_emitted > 0 && self.instrs_emitted.is_multiple_of(self.spec.phase_instrs) {
            self.enter_phase();
        }
        self.instrs_emitted += 1;

        let body = &self.program[self.cur_loop];
        let base_pc = body.base_pc;
        let pc = base_pc + 4 * self.slot as u64;
        let slot = body.slots[self.slot];
        let last = body.slots.len() - 1;

        match slot {
            Slot::Alu => {
                let (a, b) = (self.pick_src(), self.pick_src());
                let d = self.alloc_dest();
                self.slot += 1;
                Instr::new(pc, InstrKind::IntAlu).with_dest(d).with_srcs(Some(a), Some(b))
            }
            Slot::Mul => {
                let (a, b) = (self.pick_src(), self.pick_src());
                let d = self.alloc_dest();
                self.slot += 1;
                Instr::new(pc, InstrKind::IntMul).with_dest(d).with_srcs(Some(a), Some(b))
            }
            Slot::Fp => {
                let (a, b) = (self.pick_src(), self.pick_src());
                let d = self.alloc_dest();
                self.slot += 1;
                Instr::new(pc, InstrKind::FpAlu).with_dest(d).with_srcs(Some(a), Some(b))
            }
            Slot::Load(p) => {
                let m = self.mem_ref(p);
                let a = self.pick_src();
                let d = self.alloc_dest();
                self.slot += 1;
                Instr::new(pc, InstrKind::Load).with_dest(d).with_srcs(Some(a), None).with_mem(m)
            }
            Slot::Store(p) => {
                let m = self.mem_ref(p);
                let (a, b) = (self.pick_src(), self.pick_src());
                self.slot += 1;
                Instr::new(pc, InstrKind::Store).with_srcs(Some(a), Some(b)).with_mem(m)
            }
            Slot::Cond { bias, unpredictable, skip } => {
                let p = if unpredictable { 0.5 } else { bias };
                let taken = self.rng.gen_bool(p);
                // Most branches fold their compare (flags are ready when
                // the branch issues); a minority wait on a register, which
                // is what makes some mispredictions resolve late.
                let src = self.rng.gen_bool(0.25).then(|| self.pick_src());
                // Static forward skip, staying inside the body.
                let target_slot = (self.slot + 1 + skip as usize).min(last);
                let target = base_pc + 4 * target_slot as u64;
                self.slot = if taken { target_slot } else { self.slot + 1 };
                Instr::new(pc, InstrKind::Branch)
                    .with_srcs(src, None)
                    .with_branch(BranchInfo { taken, target })
            }
            Slot::Back { p_back } => {
                let taken = self.rng.gen_bool(p_back);
                let target = base_pc;
                self.slot = if taken { 0 } else { self.slot + 1 };
                // Loop back-edges test an induction variable that is
                // essentially always ready: no register dependence.
                Instr::new(pc, InstrKind::Branch).with_branch(BranchInfo { taken, target })
            }
            Slot::Exit => {
                let next = self.pick_next_loop();
                let target = self.program[next].base_pc;
                self.cur_loop = next;
                self.slot = 0;
                Instr::new(pc, InstrKind::Jump).with_branch(BranchInfo { taken: true, target })
            }
        }
    }

    fn name(&self) -> &str {
        self.spec.name
    }
}

/// Lays out the static program: loop bodies packed contiguously from
/// [`CODE_BASE`], each ending in a back-edge and an exit jump.
fn build_program(spec: &WorkloadSpec, mix: AccessMix, rng: &mut SmallRng) -> Vec<LoopBody> {
    let mut program = Vec::with_capacity(spec.num_loops);
    let mut pc = CODE_BASE;
    for _ in 0..spec.num_loops {
        // Body length varies around the mean (at least 4: work + branches).
        let len = ((spec.mean_body_len as f64) * rng.gen_range(0.6..1.4)).round() as usize;
        let len = len.max(4);
        let inner = len - 2; // last two slots are Back + Exit.

        let m = &spec.instr_mix;
        let loads = (len as f64 * m.load).round() as usize;
        let stores = (len as f64 * m.store).round() as usize;
        let conds = ((len as f64 * m.branch).round() as usize).saturating_sub(1);
        let fps = (len as f64 * m.fp).round() as usize;
        let muls = (len as f64 * m.mul).round() as usize;

        let mut slots: Vec<Slot> = Vec::with_capacity(len);
        for _ in 0..loads.min(inner) {
            slots.push(Slot::Load(pick_pattern(mix, rng)));
        }
        for _ in 0..stores {
            slots.push(Slot::Store(pick_pattern(mix, rng)));
        }
        for _ in 0..conds {
            // Real branch populations mix mostly-not-taken guard branches
            // with mostly-taken if-then-else main paths; predictable
            // branches are strongly biased (2-bit counters learn them to a
            // few percent error).
            let bias = if rng.gen_bool(0.6) {
                rng.gen_range(0.01..0.08)
            } else {
                rng.gen_range(0.92..0.99)
            };
            slots.push(Slot::Cond {
                bias,
                unpredictable: rng.gen_bool(spec.unpredictable_branch_frac),
                skip: 1 + rng.gen::<u8>() % 3,
            });
        }
        for _ in 0..fps {
            slots.push(Slot::Fp);
        }
        for _ in 0..muls {
            slots.push(Slot::Mul);
        }
        while slots.len() < inner {
            slots.push(Slot::Alu);
        }
        slots.truncate(inner);
        // Deterministic shuffle of the body interior.
        for i in (1..slots.len()).rev() {
            let j = rng.gen_range(0..=i);
            slots.swap(i, j);
        }
        let p_back = 1.0 - 1.0 / spec.mean_iters.max(1.0);
        slots.push(Slot::Back { p_back });
        slots.push(Slot::Exit);

        let body_len = slots.len() as u64;
        program.push(LoopBody { base_pc: pc, slots, successor: 0 });
        pc += 4 * body_len + 16; // small inter-function padding
    }
    // Wire preferred successors (mostly nearby, occasionally far).
    let n = program.len();
    for (i, body) in program.iter_mut().enumerate() {
        body.successor = if rng.gen_bool(0.8) {
            (i + 1 + rng.gen_range(0..3usize)) % n
        } else {
            rng.gen_range(0..n)
        };
    }
    program
}

fn pick_pattern(mix: AccessMix, rng: &mut SmallRng) -> Pattern {
    let r: f64 = rng.gen();
    if r < mix.hot {
        Pattern::Hot
    } else if r < mix.hot + mix.stream {
        Pattern::Stream
    } else if r < mix.hot + mix.stream + mix.chase {
        Pattern::Chase
    } else {
        Pattern::Stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    fn sample(name: &str, n: usize) -> Vec<Instr> {
        let mut w = suite::by_name(name).unwrap().build(1);
        (0..n).map(|_| w.next_instr()).collect()
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = sample("vpr", 5000);
        let b = sample("vpr", 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let spec = suite::by_name("vpr").unwrap();
        let mut a = spec.build(1);
        let mut b = spec.build(2);
        let same = (0..1000).filter(|_| a.next_instr() == b.next_instr()).count();
        assert!(same < 1000);
    }

    #[test]
    fn instruction_mix_roughly_matches_spec() {
        let spec = suite::by_name("gcc").unwrap();
        let instrs = sample("gcc", 60_000);
        let n = instrs.len() as f64;
        let frac = |k: InstrKind| instrs.iter().filter(|i| i.kind == k).count() as f64 / n;
        assert!((frac(InstrKind::Load) - spec.instr_mix.load).abs() < 0.05);
        assert!((frac(InstrKind::Store) - spec.instr_mix.store).abs() < 0.05);
        // Branch fraction includes back-edges, so allow a wider band.
        assert!((frac(InstrKind::Branch) - spec.instr_mix.branch).abs() < 0.08);
    }

    #[test]
    fn memory_addresses_stay_in_segments() {
        for name in ["mcf", "health", "art"] {
            let spec = suite::by_name(name).unwrap();
            for i in sample(name, 20_000) {
                if let Some(m) = i.mem {
                    let in_heap =
                        (DATA_BASE..DATA_BASE + spec.footprint_bytes + 4096).contains(&m.addr);
                    let in_stack = (STACK_BASE..STACK_BASE + 4096).contains(&m.addr);
                    assert!(in_heap || in_stack, "{name}: addr {:#x}", m.addr);
                    assert!(m.base <= m.addr, "base must not exceed addr");
                }
            }
        }
    }

    #[test]
    fn pcs_stay_in_code_segment() {
        for name in ["gcc", "treeadd"] {
            let spec = suite::by_name(name).unwrap();
            let limit = CODE_BASE + spec.code_bytes() * 2;
            for i in sample(name, 20_000) {
                assert!((CODE_BASE..limit).contains(&i.pc), "{name}: pc {:#x}", i.pc);
            }
        }
    }

    #[test]
    fn predecode_accuracy_emerges_at_both_granularities() {
        // subarray(base) == subarray(addr) should hold ~80% of the time at
        // 512 B granularity (1 KB subarrays) and ~61% at 32 B granularity
        // (line-sized subarrays): Section 6.3 of the paper.
        let mut hits512 = 0u64;
        let mut hits32 = 0u64;
        let mut total = 0u64;
        for name in ["gcc", "mcf", "mesa", "bh"] {
            for i in sample(name, 40_000) {
                if let Some(m) = i.mem {
                    total += 1;
                    if m.addr >> 9 == m.base >> 9 {
                        hits512 += 1;
                    }
                    if m.addr >> 5 == m.base >> 5 {
                        hits32 += 1;
                    }
                }
            }
        }
        let acc512 = hits512 as f64 / total as f64;
        let acc32 = hits32 as f64 / total as f64;
        assert!((0.72..=0.88).contains(&acc512), "512 B accuracy {acc512:.3}");
        assert!((0.52..=0.70).contains(&acc32), "32 B accuracy {acc32:.3}");
    }

    #[test]
    fn branches_are_mostly_biased() {
        let instrs = sample("wupwise", 50_000);
        let taken = instrs
            .iter()
            .filter(|i| i.kind == InstrKind::Branch)
            .filter(|i| i.branch.unwrap().taken)
            .count() as f64;
        let branches = instrs.iter().filter(|i| i.kind == InstrKind::Branch).count() as f64;
        // Mixed population: biased guards, biased main paths, taken
        // back-edges. The rate must sit well away from both extremes.
        let rate = taken / branches;
        assert!((0.35..=0.85).contains(&rate), "taken rate {rate}");
    }

    #[test]
    fn control_flow_is_consistent() {
        // After a taken branch the next pc equals the recorded target; after
        // anything else it is pc + 4.
        let mut w = suite::by_name("bzip2").unwrap().build(3);
        let mut prev: Option<Instr> = None;
        for _ in 0..20_000 {
            let i = w.next_instr();
            if let Some(p) = prev {
                assert_eq!(i.pc, p.next_pc(), "discontinuity after {:#x}", p.pc);
            }
            prev = Some(i);
        }
    }

    #[test]
    fn phases_move_the_hot_region() {
        // The most-touched 4 KB page (the hot region) must move between
        // phases, even though pointer chasing sprays the whole footprint.
        let spec = suite::by_name("health").unwrap();
        let mut w = spec.build(9);
        let phase = spec.phase_instrs as usize;
        let mode_page = |w: &mut SyntheticWorkload| -> u64 {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..phase {
                if let Some(m) = w.next_instr().mem {
                    *counts.entry(m.addr >> 9).or_insert(0u64) += 1;
                }
            }
            counts.into_iter().max_by_key(|&(_, c)| c).expect("phase touches memory").0
        };
        let modes: std::collections::HashSet<u64> = (0..6).map(|_| mode_page(&mut w)).collect();
        assert!(modes.len() >= 2, "hot page never moved: {modes:?}");
    }
}
