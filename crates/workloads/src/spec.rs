//! Workload parameterisation.

use serde::{Deserialize, Serialize};

use crate::generator::SyntheticWorkload;

/// Benchmark suite a workload imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2000 (run with SimPoint sampling in the paper).
    Spec2000,
    /// Olden pointer-intensive suite (run to completion in the paper).
    Olden,
}

/// Relative weights of the four data-access patterns.
///
/// Weights need not sum to one; they are normalised at build time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessMix {
    /// Reuse within a small contiguous hot region (moves every phase).
    pub hot: f64,
    /// Sequential streaming through the whole footprint.
    pub stream: f64,
    /// Pointer chasing: near-random jumps through the whole footprint.
    pub chase: f64,
    /// Stack traffic within a ~1 KB frame region.
    pub stack: f64,
}

impl AccessMix {
    pub(crate) fn normalized(self) -> AccessMix {
        let sum = self.hot + self.stream + self.chase + self.stack;
        assert!(sum > 0.0, "access mix must have positive weight");
        AccessMix {
            hot: self.hot / sum,
            stream: self.stream / sum,
            chase: self.chase / sum,
            stack: self.stack / sum,
        }
    }
}

/// Dynamic instruction-class fractions.
///
/// The remainder after loads, stores, branches, floating-point and multiply
/// operations is single-cycle integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstrMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of conditional branches (including loop back-edges).
    pub branch: f64,
    /// Fraction of floating-point operations.
    pub fp: f64,
    /// Fraction of integer multiplies.
    pub mul: f64,
}

impl InstrMix {
    pub(crate) fn validate(&self) {
        let sum = self.load + self.store + self.branch + self.fp + self.mul;
        assert!(
            (0.0..=1.0).contains(&sum),
            "instruction mix fractions sum to {sum}, must be within [0, 1]"
        );
        for (name, f) in [
            ("load", self.load),
            ("store", self.store),
            ("branch", self.branch),
            ("fp", self.fp),
            ("mul", self.mul),
        ] {
            assert!((0.0..=1.0).contains(&f), "{name} fraction {f} out of range");
        }
    }
}

/// Full parameterisation of one synthetic benchmark.
///
/// # Examples
///
/// ```
/// use bitline_workloads::suite;
///
/// let spec = suite::by_name("mcf").unwrap();
/// assert!(spec.footprint_bytes > 1 << 20, "mcf is memory-bound");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Total data footprint in bytes.
    pub footprint_bytes: u64,
    /// Size of the per-phase hot region in bytes (contiguous, so it maps to
    /// a small number of cache subarrays).
    pub hot_bytes: u64,
    /// Instructions per program phase; the hot region, chase seed and
    /// active code window move at phase boundaries.
    pub phase_instrs: u64,
    /// Data access pattern mix.
    pub access_mix: AccessMix,
    /// Instruction class mix.
    pub instr_mix: InstrMix,
    /// Fraction of conditional branches whose outcome is data-dependent
    /// (essentially unpredictable).
    pub unpredictable_branch_frac: f64,
    /// Number of distinct loop bodies (static code regions).
    pub num_loops: usize,
    /// Mean loop body length in instructions.
    pub mean_body_len: usize,
    /// Mean iterations per loop entry.
    pub mean_iters: f64,
    /// Fraction of loops active in any one phase (instruction working set).
    pub active_loop_frac: f64,
}

impl WorkloadSpec {
    /// Instantiates the deterministic generator for this spec.
    ///
    /// The same `(spec, seed)` pair always produces the same trace.
    #[must_use]
    pub fn build(&self, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(self.clone(), seed)
    }

    /// Approximate static code footprint in bytes (4-byte instructions).
    #[must_use]
    pub fn code_bytes(&self) -> u64 {
        (self.num_loops * (self.mean_body_len + 4) * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mix_normalises() {
        let m = AccessMix { hot: 2.0, stream: 1.0, chase: 1.0, stack: 0.0 }.normalized();
        assert!((m.hot - 0.5).abs() < 1e-12);
        assert!((m.hot + m.stream + m.chase + m.stack - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn access_mix_rejects_all_zero() {
        let _ = AccessMix { hot: 0.0, stream: 0.0, chase: 0.0, stack: 0.0 }.normalized();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instr_mix_rejects_negative() {
        InstrMix { load: -0.1, store: 0.1, branch: 0.1, fp: 0.0, mul: 0.0 }.validate();
    }
}
