//! Synthetic SPEC2000/Olden-like workloads.
//!
//! The paper evaluates sixteen applications from SPEC2000 (ammp, art,
//! bzip2, equake, gcc, mcf, mesa, vortex, vpr, wupwise) and Olden (bh,
//! bisort, em3d, health, treeadd, tsp). Running those binaries requires an
//! ISA-level simulator and the original inputs; this crate substitutes
//! **parameterised synthetic trace generators**, one per benchmark, tuned
//! to the qualitative behaviour the paper reports and relies on:
//!
//! * data footprint and access-pattern mix (hot-region reuse, streaming,
//!   pointer chasing, stack traffic) — these drive the D-cache subarray
//!   reference locality of Figures 5, 6, 8 and 10;
//! * static code footprint and loop structure — these drive I-cache
//!   subarray locality;
//! * branch predictability — this drives front-end stalls and replay
//!   sensitivity;
//! * displacement-addressing statistics — these make the predecoding
//!   heuristic's accuracy (~80% at 1 KB subarrays, ~61% at line-sized;
//!   Section 6.3) *emerge* from `subarray(base) == subarray(base + disp)`
//!   rather than being assumed.
//!
//! All generators are deterministic for a fixed seed.
//!
//! # Examples
//!
//! ```
//! use bitline_trace::TraceSource;
//! use bitline_workloads::suite;
//!
//! let mut health = suite::by_name("health").unwrap().build(42);
//! let first = health.next_instr();
//! assert_eq!(health.name(), "health");
//! assert!(first.pc >= bitline_workloads::CODE_BASE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod spec;
pub mod suite;

pub use generator::SyntheticWorkload;
pub use spec::{AccessMix, InstrMix, Suite, WorkloadSpec};

/// Base virtual address of the synthetic code segment.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Base virtual address of the synthetic heap/data segment.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Base virtual address of the synthetic stack segment.
pub const STACK_BASE: u64 = 0x7fff_0000;
