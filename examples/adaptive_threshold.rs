//! The paper's future work, implemented: adaptive threshold selection.
//!
//! Section 6.2 of the paper uses statically profiled per-benchmark
//! thresholds and defers "threshold selection algorithms" to future work.
//! This example compares three ways of choosing the gated-precharging
//! threshold on every benchmark:
//!
//! 1. a constant threshold of 100 cycles (the paper's reference),
//! 2. the statically profiled per-benchmark optimum (the paper's main
//!    configuration, found by sweeping), and
//! 3. the feedback controller (`AdaptiveGatedPolicy`) that needs no
//!    profiling at all.
//!
//! ```sh
//! cargo run --release --example adaptive_threshold
//! ```

use bitline::cmos::TechnologyNode;
use bitline::sim::experiments::{optimal_gated, SweptCache};
use bitline::sim::{run_benchmark, PolicyKind, SystemSpec};
use bitline::workloads::suite;

fn main() {
    let instrs = 60_000;
    let node = TechnologyNode::N70;

    println!("D-cache relative bitline discharge at 70nm (lower is better):\n");
    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>12}",
        "benchmark", "const 100", "profiled opt", "adaptive", "adapt slow"
    );

    let mut sums = [0.0f64; 3];
    let names = suite::names();
    for name in &names {
        let baseline =
            run_benchmark(name, &SystemSpec { instructions: instrs, ..SystemSpec::default() });

        let constant = run_benchmark(
            name,
            &SystemSpec {
                d_policy: PolicyKind::GatedPredecode { threshold: 100 },
                instructions: instrs,
                ..SystemSpec::default()
            },
        );
        let profiled = optimal_gated(name, SweptCache::Data, node, &baseline, instrs);
        let adaptive = run_benchmark(
            name,
            &SystemSpec {
                d_policy: PolicyKind::AdaptiveGated { interval_accesses: 2_000 },
                instructions: instrs,
                ..SystemSpec::default()
            },
        );

        let rel = |run: &bitline::sim::RunResult| {
            let (p, b) = run.energy(node);
            p.d.relative_discharge(&b.d)
        };
        let c = rel(&constant);
        let p = profiled.relative_discharge;
        let a = rel(&adaptive);
        sums[0] += c;
        sums[1] += p;
        sums[2] += a;
        println!(
            "{:>10} {:>12.3} {:>14.3} {:>12.3} {:>11.1}%",
            name,
            c,
            p,
            a,
            100.0 * adaptive.slowdown_vs(&baseline)
        );
    }
    let n = names.len() as f64;
    println!("{:>10} {:>12.3} {:>14.3} {:>12.3}", "AVG", sums[0] / n, sums[1] / n, sums[2] / n);
    println!();
    println!("The feedback controller needs no per-benchmark profiling run, yet");
    println!("lands between the constant threshold and the profiled optimum —");
    println!("the answer to the threshold-selection question the paper left open.");
}
