//! Compare every precharge policy on a memory-bound and a compute-bound
//! benchmark: static pull-up, oracle, on-demand, gated (with and without
//! predecoding) and the resizable-cache baseline.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use bitline::cmos::TechnologyNode;
use bitline::sim::{run_benchmark, PolicyKind, SystemSpec};

fn main() {
    let instructions = 60_000;
    let node = TechnologyNode::N70;
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("static pull-up", PolicyKind::StaticPullUp),
        ("oracle", PolicyKind::Oracle),
        ("on-demand", PolicyKind::OnDemand),
        ("gated (t=100)", PolicyKind::Gated { threshold: 100 }),
        ("gated+predec", PolicyKind::GatedPredecode { threshold: 100 }),
        ("resizable", PolicyKind::Resizable { interval_accesses: 4_000, slack: 0.005 }),
        ("adaptive", PolicyKind::AdaptiveGated { interval_accesses: 2_000 }),
        ("leakage-biased", PolicyKind::LeakageBiased),
        ("drowsy (t=100)", PolicyKind::Drowsy { threshold: 100 }),
    ];

    for benchmark in ["mcf", "mesa"] {
        println!("=== {benchmark} ({instructions} instructions, {node}) ===");
        println!(
            "{:>16} {:>10} {:>10} {:>12} {:>12} {:>12}",
            "policy", "cycles", "slowdown", "D discharge", "D total", "D delayed"
        );
        let baseline =
            run_benchmark(benchmark, &SystemSpec { instructions, ..SystemSpec::default() });
        for (label, policy) in &policies {
            let run = run_benchmark(
                benchmark,
                &SystemSpec { d_policy: *policy, instructions, ..SystemSpec::default() },
            );
            let (priced, base) = run.energy(node);
            println!(
                "{:>16} {:>10} {:>9.1}% {:>12.3} {:>12.3} {:>11.1}%",
                label,
                run.cycles(),
                100.0 * run.slowdown_vs(&baseline),
                priced.d.relative_discharge(&base.d),
                priced.d.total_j() / base.d.total_j(),
                100.0 * run.d_report.delayed_fraction(),
            );
        }
        println!();
    }
    println!("Lower discharge is better; the oracle bounds what any policy can do.");
    println!("On-demand shows why timeliness matters: accurate but always late.");
    println!("Drowsy attacks cell leakage instead of bitline discharge — compare the");
    println!("`D total` column: at 70nm the bitlines are the bigger prize (Section 7).");
}
