//! Where bitline isolation started: on-demand precharging in the Alpha
//! 21164's L2 (paper Section 2).
//!
//! The first application of bitline isolation predecode-identified the
//! accessed L2 subarray and precharged it on demand — viable there because
//! the pull-up hides under the L2's long access latency, and worth doing
//! even in older CMOS because the L2 is large and mostly idle. This
//! example reproduces that design point: an on-demand (delay-hidden) L2
//! precharge policy against the conventional statically pulled-up L2,
//! across all four technology nodes.
//!
//! ```sh
//! cargo run --release --example alpha21164_l2
//! ```

use bitline::cache::{MemorySystem, MemorySystemConfig};
use bitline::cmos::TechnologyNode;
use bitline::cpu::{Cpu, CpuConfig};
use bitline::energy::EnergyAccountant;
use bitline::precharge::{LeakageBiasedPolicy, StaticPullUp};
use bitline::workloads::suite;

fn main() {
    let benchmark = "mcf"; // L2-heavy: big footprint, frequent L1 misses
    let instructions = 80_000;

    let cfg = MemorySystemConfig::default();
    let l2_cfg = MemorySystem::l2_config(&cfg);

    // L2 with on-demand precharging: the 12-cycle access hides the 1-cycle
    // pull-up, so the policy is delay-free (LeakageBiasedPolicy models
    // exactly that: on-demand isolation with the penalty hidden).
    let mem = MemorySystem::with_l2_policy(
        cfg,
        Box::new(StaticPullUp::new(cfg.l1d.subarrays())),
        Box::new(StaticPullUp::new(cfg.l1i.subarrays())),
        Box::new(LeakageBiasedPolicy::new(l2_cfg.subarrays())),
    );
    let mut cpu = Cpu::new(CpuConfig::default(), mem);
    let mut trace = suite::by_name(benchmark).expect("known benchmark").build(42);
    let stats = cpu.run(&mut trace, instructions);
    let mut mem = cpu.into_memory();
    let l2_accesses = mem.l2().hits() + mem.l2().misses();
    let l2_report = mem.finalize_l2(stats.cycles);

    println!(
        "benchmark {benchmark}: {instructions} instructions, {} cycles, {} L2 accesses",
        stats.cycles, l2_accesses
    );
    println!(
        "L2: {} subarrays of 4KB; precharged fraction under on-demand: {:.1}%\n",
        l2_cfg.subarrays(),
        100.0 * l2_report.precharged_fraction()
    );
    println!("{:>6} {:>16} {:>16} {:>12}", "node", "static L2 (uJ)", "on-demand (uJ)", "saved");
    for node in TechnologyNode::ALL {
        let acct = EnergyAccountant::new(node, l2_cfg);
        let on_demand = acct.account(&l2_report, l2_accesses, 0, false, None);
        let baseline = acct.static_baseline(stats.cycles, l2_accesses, 0);
        println!(
            "{:>6} {:>16.3} {:>16.3} {:>11.1}%",
            node.to_string(),
            1e6 * baseline.total_j(),
            1e6 * on_demand.total_j(),
            100.0 * on_demand.overall_reduction(&baseline),
        );
    }
    println!();
    println!("The L2 is big (128 subarrays) and mostly idle, so isolating it pays");
    println!("even before 70nm — which is why the 21164 shipped it in 1995, while");
    println!("L1s had to wait for gated precharging (the paper's contribution).");
}
