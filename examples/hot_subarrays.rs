//! Visualise subarray reference locality: an ASCII heat map of which data
//! cache subarrays are hot, epoch by epoch — the phenomenon gated
//! precharging exploits (paper Section 6.1).
//!
//! ```sh
//! cargo run --release --example hot_subarrays
//! ```

use bitline::cache::{CacheConfig, MemorySystem, MemorySystemConfig};
use bitline::cpu::{Cpu, CpuConfig};
use bitline::precharge::{GatedPolicy, StaticPullUp};
use bitline::workloads::suite;

fn main() {
    let benchmark = "health";
    let epochs = 24;
    let instrs_per_epoch = 4_000u64;

    let cfg = MemorySystemConfig::default();
    let mem = MemorySystem::new(
        cfg,
        Box::new(GatedPolicy::new(cfg.l1d.subarrays(), 100, 1)),
        Box::new(StaticPullUp::new(cfg.l1i.subarrays())),
    );
    let mut cpu = Cpu::new(CpuConfig::default(), mem);
    let mut trace = suite::by_name(benchmark).expect("known benchmark").build(7);

    let subarrays = CacheConfig::l1_data().subarrays();
    println!(
        "D-cache subarray heat map for `{benchmark}` ({subarrays} subarrays, {epochs} epochs of {instrs_per_epoch} instrs)"
    );
    println!("columns = subarrays 0..{}; darker = more accesses in the epoch\n", subarrays - 1);

    let mut prev = vec![0u64; subarrays];
    for epoch in 0..epochs {
        cpu.run(&mut trace, instrs_per_epoch);
        let snapshot = cpu.memory().l1d().subarray_access_counts();
        let row: String =
            snapshot.iter().zip(prev.iter()).map(|(&now, &before)| shade(now - before)).collect();
        println!("epoch {epoch:>2} |{row}|");
        prev = snapshot;
    }

    println!("\nA handful of hot columns at any moment, drifting across epochs:");
    println!("exactly the locality gated precharging turns into energy savings.");
}

fn shade(count: u64) -> char {
    match count {
        0 => ' ',
        1..=9 => '.',
        10..=49 => ':',
        50..=199 => '+',
        200..=799 => '#',
        _ => '@',
    }
}
