//! Quickstart: run one benchmark with gated precharging and print what it
//! saves.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bitline::cmos::TechnologyNode;
use bitline::sim::{run_benchmark, PolicyKind, SystemSpec};

fn main() {
    let instructions = 100_000;
    let benchmark = "gcc";

    // A conventional cache (every subarray statically pulled up)...
    let baseline_spec = SystemSpec { instructions, ..SystemSpec::default() };
    let baseline = run_benchmark(benchmark, &baseline_spec);

    // ...versus gated precharging with the paper's constant threshold of
    // 100 cycles and predecoding on the data cache.
    let gated_spec = SystemSpec {
        d_policy: PolicyKind::GatedPredecode { threshold: 100 },
        i_policy: PolicyKind::Gated { threshold: 100 },
        instructions,
        ..SystemSpec::default()
    };
    let gated = run_benchmark(benchmark, &gated_spec);

    println!("benchmark: {benchmark}, {instructions} instructions, 70nm\n");
    println!(
        "baseline : {} cycles (IPC {:.2}), D-miss {:.1}%, I-miss {:.1}%",
        baseline.cycles(),
        baseline.stats.ipc(),
        100.0 * baseline.d_miss_ratio(),
        100.0 * baseline.i_miss_ratio()
    );
    println!(
        "gated    : {} cycles (IPC {:.2}), slowdown {:+.2}%",
        gated.cycles(),
        gated.stats.ipc(),
        100.0 * gated.slowdown_vs(&baseline)
    );

    let (policy, base) = gated.energy(TechnologyNode::N70);
    println!();
    println!(
        "D-cache: bitline discharge cut by {:.0}%, overall energy by {:.0}%",
        100.0 * (1.0 - policy.d.relative_discharge(&base.d)),
        100.0 * policy.d.overall_reduction(&base.d)
    );
    println!(
        "I-cache: bitline discharge cut by {:.0}%, overall energy by {:.0}%",
        100.0 * (1.0 - policy.i.relative_discharge(&base.i)),
        100.0 * policy.i.overall_reduction(&base.i)
    );
    println!(
        "\nsubarrays precharged on average: D {:.0}%, I {:.0}% (conventional: 100%)",
        100.0 * gated.d_report.precharged_fraction(),
        100.0 * gated.i_report.precharged_fraction()
    );
}
