//! The economics of bitline isolation across CMOS generations: why the
//! paper concludes isolation is a bad deal at 180 nm and nearly free at
//! 70 nm (Figure 2 / Section 4).
//!
//! ```sh
//! cargo run --release --example technology_scaling
//! ```

use bitline::cache::CacheConfig;
use bitline::circuit::{BitlineModel, TransientSim};
use bitline::cmos::TechnologyNode;

fn main() {
    let geom = CacheConfig::l1_data().geometry();

    println!("Bitline isolation economics for one 1 KB subarray of the L1 D-cache\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>16} {:>14}",
        "node", "static burn", "episode cost", "break-even", "break-even", "power @5ns"
    );
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>16} {:>14}",
        "", "(uW)", "(fJ)", "(ns idle)", "(cycles idle)", "(x static)"
    );

    for node in TechnologyNode::ALL {
        let sim = TransientSim::new(BitlineModel::new(node, geom));
        let static_uw = sim.model().static_power_w() * 1e6;
        // A fully settled isolation episode: gates both ways + full repump.
        let episode_fj = sim.isolation_episode_energy_j(1e6) * 1e15;
        println!(
            "{:>6} {:>12.1} {:>14.0} {:>14.1} {:>16.0} {:>14.2}",
            node.to_string(),
            static_uw,
            episode_fj,
            sim.break_even_idle_ns(),
            sim.break_even_idle_cycles(),
            sim.normalized_power_at(5.0),
        );
    }

    println!();
    println!("Reading the table:");
    println!(" * static burn grows ~3.5x per generation (leakage scaling),");
    println!(" * the per-episode switching cost halves per generation,");
    println!(" * so the idle time needed to amortise one isolation episode");
    println!("   collapses from thousands of cycles to a few dozen — which is");
    println!("   why gated precharging can afford per-subarray, per-100-cycle");
    println!("   decisions at 70 nm but resizable caches had to amortise over");
    println!("   millions of instructions at 180 nm.");
}
