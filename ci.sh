#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint, format. Run from the repo root.
#
#   ./ci.sh          full gate
#   ./ci.sh smoke    timed headline smoke: runs the headline figure at
#                    jobs=1 and jobs=N, fails if the figure differs, and
#                    writes wall-clock + run-cache stats to
#                    BENCH_headline.json
set -euo pipefail
cd "$(dirname "$0")"

smoke() {
    local instrs="${BITLINE_INSTRS:-4000}"
    local jobs_n
    jobs_n="$(nproc 2>/dev/null || echo 4)"
    # A single-core box would make the parallel leg vacuous; the workers
    # are about determinism, not speed, so oversubscribe.
    if [[ "$jobs_n" -lt 2 ]]; then jobs_n=4; fi

    echo "==> smoke: build headline driver"
    cargo bench -p bitline-bench --bench headline --no-run -q

    SMOKE_TMP="$(mktemp -d)"
    trap 'rm -rf "$SMOKE_TMP"' EXIT
    local out_serial="$SMOKE_TMP/out1" out_parallel="$SMOKE_TMP/outN"
    local err_serial="$SMOKE_TMP/err1" err_parallel="$SMOKE_TMP/errN"

    echo "==> smoke: headline at jobs=1 (BITLINE_INSTRS=$instrs)"
    local t0 t1 secs_serial secs_parallel
    t0=$(date +%s.%N)
    BITLINE_INSTRS="$instrs" BITLINE_JOBS=1 \
        cargo bench -p bitline-bench --bench headline -q >"$out_serial" 2>"$err_serial"
    t1=$(date +%s.%N)
    secs_serial=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')

    echo "==> smoke: headline at jobs=$jobs_n"
    t0=$(date +%s.%N)
    BITLINE_INSTRS="$instrs" BITLINE_JOBS="$jobs_n" \
        cargo bench -p bitline-bench --bench headline -q >"$out_parallel" 2>"$err_parallel"
    t1=$(date +%s.%N)
    secs_parallel=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')

    echo "==> smoke: comparing figure output"
    if ! diff -u "$out_serial" "$out_parallel"; then
        echo "==> smoke: FAIL — headline output depends on the job count" >&2
        exit 1
    fi

    # The drivers report "[exec] jobs=N; run-cache: H hits, M misses, ..."
    # on stderr; pull the parallel run's cache stats into the report.
    local hits misses
    hits=$(sed -n 's/.*run-cache: \([0-9]*\) hits.*/\1/p' "$err_parallel" | tail -n 1)
    misses=$(sed -n 's/.*hits, \([0-9]*\) misses.*/\1/p' "$err_parallel" | tail -n 1)

    cat >BENCH_headline.json <<EOF
{
  "bench": "headline",
  "instructions": $instrs,
  "jobs_parallel": $jobs_n,
  "seconds_serial": $secs_serial,
  "seconds_parallel": $secs_parallel,
  "run_cache_hits": ${hits:-0},
  "run_cache_misses": ${misses:-0},
  "output_identical": true
}
EOF
    echo "==> smoke: serial ${secs_serial}s, parallel(${jobs_n}) ${secs_parallel}s"
    echo "==> smoke: wrote BENCH_headline.json"
}

if [[ "${1:-}" == "smoke" ]]; then
    smoke
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all green"
