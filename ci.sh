#!/usr/bin/env bash
# Tier-1 CI gate: build, test, lint, format. Run from the repo root.
#
#   ./ci.sh          full gate
#   ./ci.sh chaos    failpoint chaos gate: proves a run with every
#                    failpoint armed at probability 0 is byte-identical
#                    to one with BITLINE_FAILPOINTS unset, then runs the
#                    seeded chaos soak (crates/serve/tests/chaos.rs) at
#                    BITLINE_CHAOS_SEED (default 42); set
#                    BITLINE_CHAOS_SECONDS to keep re-running the soak
#                    with incrementing seeds for that long
#   ./ci.sh smoke    timed headline smoke: runs the headline figure at
#                    jobs=1 and jobs=N, fails if the figure differs, and
#                    writes wall-clock + run-cache stats to
#                    BENCH_headline.json; then exercises run supervision:
#                    a tiny --run-budget must surface as timed-out, and a
#                    SIGKILL-interrupted --checkpoint sweep must resume to
#                    byte-identical output without recomputing journaled
#                    runs; finally a metrics leg: an instrumented figure
#                    run must export schema-valid bitline-obs/v1 JSONL
#                    with the expected counter families moving, produce
#                    identical stdout, and cost no more than 2% (+ fixed
#                    slack) over the same run with metrics off; finally a
#                    reliability leg: the SECDED table on mesa must be
#                    byte-identical at jobs=1 vs jobs=N with the ecc.*
#                    counter family present, moving, and equal across
#                    job counts; finally a serve leg: the bitline-serve
#                    daemon must dedup identical in-flight requests,
#                    answer byte-identically from the journal after a
#                    SIGKILL+restart without recomputing, shed overload
#                    with positive retry_after_ms hints, and exit 0 on
#                    a SIGTERM drain
#   ./ci.sh hierarchy
#                    multi-level gate: the hierarchy table (node x
#                    levels x leakage mode) must be byte-identical to
#                    the blessed golden and across jobs=1 vs jobs=N,
#                    and a single-level sweep must render identical
#                    bytes whether the binary carries the hierarchy
#                    flags at their defaults or not at all
#   ./ci.sh voltage  supply gate: the voltage table (node x Vdd step x
#                    static/governor) must be byte-identical to the
#                    blessed golden and across jobs=1 vs jobs=N; an
#                    explicit --vdd 1.0 must leave a sweep byte-identical
#                    to one that never mentions the supply; and a forced
#                    deep undervolt under the governor must escalate the
#                    guardband ladder with vdd.* counters identical
#                    across job counts
set -euo pipefail
cd "$(dirname "$0")"

smoke() {
    local instrs="${BITLINE_INSTRS:-4000}"
    local jobs_n
    jobs_n="$(nproc 2>/dev/null || echo 4)"
    # A single-core box would make the parallel leg vacuous; the workers
    # are about determinism, not speed, so oversubscribe.
    if [[ "$jobs_n" -lt 2 ]]; then jobs_n=4; fi

    echo "==> smoke: build headline driver"
    cargo bench -p bitline-bench --bench headline --no-run -q

    SMOKE_TMP="$(mktemp -d)"
    trap 'rm -rf "$SMOKE_TMP"' EXIT
    local out_serial="$SMOKE_TMP/out1" out_parallel="$SMOKE_TMP/outN"
    local err_serial="$SMOKE_TMP/err1" err_parallel="$SMOKE_TMP/errN"

    echo "==> smoke: headline at jobs=1 (BITLINE_INSTRS=$instrs)"
    local t0 t1 secs_serial secs_parallel
    t0=$(date +%s.%N)
    BITLINE_INSTRS="$instrs" BITLINE_JOBS=1 BITLINE_METRICS="$SMOKE_TMP/headline1.jsonl" \
        cargo bench -p bitline-bench --bench headline -q >"$out_serial" 2>"$err_serial"
    t1=$(date +%s.%N)
    secs_serial=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')

    echo "==> smoke: headline at jobs=$jobs_n"
    t0=$(date +%s.%N)
    BITLINE_INSTRS="$instrs" BITLINE_JOBS="$jobs_n" \
        cargo bench -p bitline-bench --bench headline -q >"$out_parallel" 2>"$err_parallel"
    t1=$(date +%s.%N)
    secs_parallel=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')

    echo "==> smoke: comparing figure output"
    if ! diff -u "$out_serial" "$out_parallel"; then
        echo "==> smoke: FAIL — headline output depends on the job count" >&2
        exit 1
    fi

    # The drivers report "[exec] jobs=N; run-cache: H hits, M misses, ..."
    # on stderr; pull the parallel run's cache stats into the report.
    local hits misses
    hits=$(sed -n 's/.*run-cache: \([0-9]*\) hits.*/\1/p' "$err_parallel" | tail -n 1)
    misses=$(sed -n 's/.*hits, \([0-9]*\) misses.*/\1/p' "$err_parallel" | tail -n 1)

    # Serial throughput gate. MIPS comes from the runner's own counters
    # (committed instructions over hot-loop wall time, excluding build,
    # setup and reporting), so the gate measures the core, not cargo.
    local committed busy mips_serial
    committed=$(metric_value "$SMOKE_TMP/headline1.jsonl" sim.runner.committed_instructions)
    busy=$(metric_value "$SMOKE_TMP/headline1.jsonl" sim.runner.busy_micros)
    if [[ "$busy" -eq 0 ]]; then
        echo "==> smoke: FAIL — serial metrics export carries no sim.runner.busy_micros" >&2
        exit 1
    fi
    mips_serial=$(awk -v c="$committed" -v b="$busy" 'BEGIN {printf "%.3f", c / b}')
    # The pre-SoA pointer-chasing core sustained ~0.45 MIPS here; the
    # data-oriented rewrite must hold at least 2x that. Override the
    # floor (BITLINE_MIPS_FLOOR) when smoking on much slower hardware.
    local mips_floor="${BITLINE_MIPS_FLOOR:-0.9}"
    if ! awk -v m="$mips_serial" -v f="$mips_floor" 'BEGIN {exit !(m >= f)}'; then
        echo "==> smoke: FAIL — serial throughput $mips_serial MIPS" \
            "($committed instrs / ${busy}us busy) is below the $mips_floor MIPS floor" \
            "(2x the ~0.45 MIPS pre-SoA core) — the hot loop regressed" >&2
        exit 1
    fi

    # Parallel-scaling gate, normalised by the cores that can actually
    # run: efficiency = speedup / min(jobs, nproc). On a single-core box
    # the parallel leg proves determinism rather than speed, so the
    # divisor degrades to 1 and the gate checks for pool overhead only.
    local ncores eff_jobs scaling_efficiency
    ncores="$(nproc 2>/dev/null || echo 1)"
    eff_jobs=$(( jobs_n < ncores ? jobs_n : ncores ))
    scaling_efficiency=$(awk -v s="$secs_serial" -v p="$secs_parallel" -v j="$eff_jobs" \
        'BEGIN {printf "%.3f", s / (p * j)}')
    local eff_floor="${BITLINE_EFF_FLOOR:-0.8}"
    if ! awk -v e="$scaling_efficiency" -v f="$eff_floor" 'BEGIN {exit !(e >= f)}'; then
        echo "==> smoke: FAIL — parallel efficiency $scaling_efficiency at jobs=$jobs_n" \
            "(${secs_serial}s -> ${secs_parallel}s on $eff_jobs usable cores)" \
            "is below the $eff_floor floor — sweep scaling regressed" >&2
        exit 1
    fi

    # Temp-file + rename in the same directory: a crash mid-write never
    # leaves a truncated BENCH_headline.json behind.
    cat >"BENCH_headline.json.tmp.$$" <<EOF
{
  "bench": "headline",
  "instructions": $instrs,
  "jobs_parallel": $jobs_n,
  "seconds_serial": $secs_serial,
  "seconds_parallel": $secs_parallel,
  "mips_serial": $mips_serial,
  "scaling_efficiency": $scaling_efficiency,
  "run_cache_hits": ${hits:-0},
  "run_cache_misses": ${misses:-0},
  "output_identical": true
}
EOF
    mv "BENCH_headline.json.tmp.$$" BENCH_headline.json

    # Keep the quoted headline figures in the docs honest: any line
    # tagged <!-- ci:headline --> is rewritten from this run's artifact,
    # so README/ROADMAP can never drift from BENCH_headline.json again.
    local headline doc
    headline="Headline bench: ${secs_serial}s serial (${mips_serial} MIPS), \
${secs_parallel}s at jobs=${jobs_n}, scaling efficiency ${scaling_efficiency} \
(regenerated by \`./ci.sh smoke\`). <!-- ci:headline -->"
    for doc in README.md ROADMAP.md; do
        if grep -q 'ci:headline' "$doc"; then
            sed -i "s|^\( *\).*<!-- ci:headline -->.*$|\1$headline|" "$doc"
        fi
    done

    echo "==> smoke: serial ${secs_serial}s (${mips_serial} MIPS)," \
        "parallel(${jobs_n}) ${secs_parallel}s (efficiency ${scaling_efficiency})"
    echo "==> smoke: wrote BENCH_headline.json"

    resume_smoke "$instrs" "$jobs_n"
}

resume_smoke() {
    local instrs="$1" jobs_n="$2"
    local sim=./target/debug/bitline-sim
    echo "==> smoke: build bitline-sim"
    cargo build -q -p bitline-sim

    echo "==> smoke: a run over budget surfaces as timed-out"
    local to_err="$SMOKE_TMP/timeout.err"
    if "$sim" -b gcc -i 500000 --run-budget 0.001ms >/dev/null 2>"$to_err"; then
        echo "==> smoke: FAIL — a 1us budget cannot complete a 500k-instruction run" >&2
        exit 1
    fi
    if ! grep -q "timed-out" "$to_err" || ! grep -q "2 attempt" "$to_err"; then
        echo "==> smoke: FAIL — timeout must be reported as timed-out after 2 attempts" >&2
        cat "$to_err" >&2
        exit 1
    fi

    echo "==> smoke: resume — reference sweep (no checkpoint)"
    local ref="$SMOKE_TMP/ref.out" ckpt="$SMOKE_TMP/ckpt"
    "$sim" -b all -i "$instrs" -j "$jobs_n" >"$ref" 2>/dev/null

    echo "==> smoke: resume — cold sweep SIGKILLed mid-flight"
    "$sim" -b all -i "$instrs" -j 1 --checkpoint "$ckpt" >/dev/null 2>&1 &
    local pid=$!
    sleep 0.3
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true

    echo "==> smoke: resume — restarted sweep completes from the journal"
    local resumed="$SMOKE_TMP/resumed.out"
    "$sim" -b all -i "$instrs" -j "$jobs_n" --checkpoint "$ckpt" \
        >"$resumed" 2>"$SMOKE_TMP/resumed.err"
    if ! diff -u "$ref" "$resumed"; then
        echo "==> smoke: FAIL — resumed sweep differs from the uncheckpointed reference" >&2
        exit 1
    fi

    echo "==> smoke: resume — warm sweep replays every journaled run"
    local warm="$SMOKE_TMP/warm.out" warm_err="$SMOKE_TMP/warm.err"
    "$sim" -b all -i "$instrs" -j "$jobs_n" --checkpoint "$ckpt" >"$warm" 2>"$warm_err"
    if ! diff -u "$ref" "$warm"; then
        echo "==> smoke: FAIL — warm sweep differs from the reference" >&2
        exit 1
    fi
    local replayed recomputed
    replayed=$(sed -n 's/.*journal: \([0-9]*\) replayed.*/\1/p' "$warm_err" | tail -n 1)
    recomputed=$(sed -n 's/.*appended, \([0-9]*\) recomputed.*/\1/p' "$warm_err" | tail -n 1)
    if [[ -z "$replayed" || "$replayed" -eq 0 ]]; then
        echo "==> smoke: FAIL — warm sweep replayed nothing from the journal" >&2
        cat "$warm_err" >&2
        exit 1
    fi
    if [[ -z "$recomputed" || "$recomputed" -ne 0 ]]; then
        echo "==> smoke: FAIL — warm sweep recomputed ${recomputed:-?} journaled run(s)" >&2
        cat "$warm_err" >&2
        exit 1
    fi
    echo "==> smoke: resume OK — $replayed runs replayed, 0 recomputed"

    metrics_smoke "$instrs" "$jobs_n"
}

# Extracts one counter's value from a bitline-obs/v1 JSONL file (0 when absent).
metric_value() {
    local file="$1" name="$2" v
    v=$(sed -n 's/.*"name":"'"$name"'","value":\([0-9]*\).*/\1/p' "$file" | head -n 1)
    echo "${v:-0}"
}

metrics_smoke() {
    local instrs="$1" jobs_n="$2"
    local sim=./target/debug/bitline-sim

    echo "==> smoke: metrics — fig3 with metrics off (reference timing)"
    local off_out="$SMOKE_TMP/metrics-off.out" t0 t1 secs_off secs_on
    t0=$(date +%s.%N)
    BITLINE_SUITE=mesa,bisort BITLINE_INSTRS="$instrs" \
        "$sim" -j "$jobs_n" fig3 >"$off_out" 2>/dev/null
    t1=$(date +%s.%N)
    secs_off=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')

    echo "==> smoke: metrics — fig3 instrumented (--metrics + --checkpoint)"
    local mjson="$SMOKE_TMP/metrics.jsonl" on_out="$SMOKE_TMP/metrics-on.out"
    local mckpt="$SMOKE_TMP/metrics-ckpt"
    t0=$(date +%s.%N)
    BITLINE_SUITE=mesa,bisort BITLINE_INSTRS="$instrs" \
        "$sim" -j "$jobs_n" --metrics "$mjson" --checkpoint "$mckpt" fig3 \
        >"$on_out" 2>/dev/null
    t1=$(date +%s.%N)
    secs_on=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')

    if ! diff -u "$off_out" "$on_out"; then
        echo "==> smoke: FAIL — figure output must be byte-identical with metrics on" >&2
        exit 1
    fi

    echo "==> smoke: metrics — validating $mjson against the exporter schema"
    if ! "$sim" --validate-metrics "$mjson"; then
        echo "==> smoke: FAIL — exported metrics are not schema-valid" >&2
        exit 1
    fi

    # The counter families the figure run must have moved: pool units
    # (scheduling), run-cache misses (memoisation), journal appends
    # (checkpointing), committed instructions (the runner itself).
    local name v
    for name in exec.pool.units sim.run_cache.misses exec.journal.appends \
        sim.runner.committed_instructions sim.harness.ok; do
        v=$(metric_value "$mjson" "$name")
        if [[ "$v" -eq 0 ]]; then
            echo "==> smoke: FAIL — counter $name did not move (value $v)" >&2
            exit 1
        fi
    done
    # The full taxonomy is declared even when untouched.
    for name in faults.d.injected sim.checkpoint.replayed; do
        if ! grep -q "\"name\":\"$name\"" "$mjson"; then
            echo "==> smoke: FAIL — declared counter $name missing from export" >&2
            exit 1
        fi
    done

    echo "==> smoke: metrics — faulted run moves the faults.* family"
    local fjson="$SMOKE_TMP/metrics-faults.jsonl" fault_events
    "$sim" -b mesa -i "$instrs" --fault-rate 0.05 --metrics "$fjson" >/dev/null 2>&1
    fault_events=$(grep '"name":"faults\.' "$fjson" \
        | sed 's/.*"value":\([0-9]*\).*/\1/' | awk '{s+=$1} END {print s+0}')
    if [[ "$fault_events" -eq 0 ]]; then
        echo "==> smoke: FAIL — fault injection left every faults.* counter at zero" >&2
        exit 1
    fi

    # Instrumentation overhead budget: <=2% over metrics-off, plus a fixed
    # 0.25s slack so scheduler noise on a tiny run cannot flake the gate.
    if ! echo "$secs_on $secs_off" | awk '{exit !($1 <= $2 * 1.02 + 0.25)}'; then
        echo "==> smoke: FAIL — instrumented run ${secs_on}s vs ${secs_off}s off exceeds 2% + 0.25s" >&2
        exit 1
    fi
    echo "==> smoke: metrics OK — off ${secs_off}s, on ${secs_on}s, $fault_events fault events"

    reliability_smoke "$instrs" "$jobs_n"
}

reliability_smoke() {
    local instrs="$1" jobs_n="$2"
    local sim=./target/debug/bitline-sim

    echo "==> smoke: reliability — table at jobs=1 vs jobs=$jobs_n (mesa, 70nm rates)"
    local rel1="$SMOKE_TMP/rel1.out" relN="$SMOKE_TMP/relN.out"
    local rj1="$SMOKE_TMP/rel1.jsonl" rjN="$SMOKE_TMP/relN.jsonl"
    BITLINE_SUITE=mesa BITLINE_INSTRS="$instrs" \
        "$sim" -j 1 --fault-rate 0.05 --fault-seed 7 --metrics "$rj1" reliability \
        >"$rel1" 2>/dev/null
    BITLINE_SUITE=mesa BITLINE_INSTRS="$instrs" \
        "$sim" -j "$jobs_n" --fault-rate 0.05 --fault-seed 7 --metrics "$rjN" reliability \
        >"$relN" 2>/dev/null

    if ! diff -u "$rel1" "$relN"; then
        echo "==> smoke: FAIL — reliability table depends on the job count" >&2
        exit 1
    fi

    echo "==> smoke: reliability — validating metrics export"
    if ! "$sim" --validate-metrics "$rj1"; then
        echo "==> smoke: FAIL — reliability metrics are not schema-valid" >&2
        exit 1
    fi

    # The ECC runs inside the table must move the ecc.* family, and the
    # counters must agree exactly across job counts (pure function of the
    # work, not the schedule).
    local name v1 vN moved=0
    for name in ecc.d.corrected ecc.d.due ecc.d.sdc ecc.d.scrub_words \
        ecc.d.latent_cleared ecc.d.fail_safe_subarrays ecc.i.corrected \
        ecc.i.scrub_words; do
        v1=$(metric_value "$rj1" "$name")
        vN=$(metric_value "$rjN" "$name")
        if ! grep -q "\"name\":\"$name\"" "$rj1"; then
            echo "==> smoke: FAIL — counter $name missing from reliability export" >&2
            exit 1
        fi
        if [[ "$v1" -ne "$vN" ]]; then
            echo "==> smoke: FAIL — $name differs across job counts ($v1 vs $vN)" >&2
            exit 1
        fi
        moved=$((moved + v1))
    done
    if [[ "$moved" -eq 0 ]]; then
        echo "==> smoke: FAIL — a faulted reliability table left every ecc.* counter at zero" >&2
        exit 1
    fi
    echo "==> smoke: reliability OK — ecc.* totals identical across jobs ($moved events)"

    serve_smoke "$instrs"
}

# Extracts one field's value from a serve stats response line (empty when absent).
serve_stat() {
    local line="$1" name="$2"
    echo "$line" | sed -n 's/.*"'"$name"'":\([0-9]*\).*/\1/p'
}

serve_smoke() {
    local instrs="$1"
    local serve=./target/debug/bitline-serve
    echo "==> smoke: serve — build bitline-serve"
    cargo build -q -p bitline-serve

    local sock="$SMOKE_TMP/serve.sock" sckpt="$SMOKE_TMP/serve-ckpt"
    local slow_req='{"id":"slow","benchmark":"gcc","spec":{"instructions":60000}}'
    local same_req='{"id":"IDN","benchmark":"mesa","spec":{"instructions":'"$instrs"'}}'

    wait_for_socket() {
        for _ in $(seq 1 200); do
            [[ -S "$1" ]] && return 0
            sleep 0.05
        done
        echo "==> smoke: FAIL — daemon never bound $1" >&2
        exit 1
    }

    echo "==> smoke: serve — daemon 1: dedup under a busy single worker"
    "$serve" --serve --socket "$sock" --checkpoint "$sckpt" --jobs 1 \
        2>"$SMOKE_TMP/serve1.err" &
    local pid=$!
    wait_for_socket "$sock"
    # The slow distinct request is written first, so with one worker the
    # three identical requests land while it runs: one queues, two dedup.
    local cold="$SMOKE_TMP/serve-cold.out"
    timeout 60 "$serve" --socket "$sock" \
        --request "$slow_req" \
        --request "${same_req//IDN/r1}" \
        --request "${same_req//IDN/r2}" \
        --request "${same_req//IDN/r3}" >"$cold"
    local stats deduped accepted
    stats=$(timeout 60 "$serve" --socket "$sock" --stats)
    deduped=$(serve_stat "$stats" deduped)
    accepted=$(serve_stat "$stats" accepted)
    if [[ "${deduped:-0}" -ne 2 || "${accepted:-0}" -ne 2 ]]; then
        echo "==> smoke: FAIL — expected 2 accepted / 2 deduped, got ${accepted:-?}/${deduped:-?}" >&2
        echo "$stats" >&2
        exit 1
    fi

    echo "==> smoke: serve — SIGKILL, restart on the same journal, resubmit"
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    # SIGKILL leaves the stale socket file behind; drop it so the socket's
    # reappearance below means the restarted daemon is listening.
    rm -f "$sock"
    "$serve" --serve --socket "$sock" --checkpoint "$sckpt" --jobs 1 \
        2>"$SMOKE_TMP/serve2.err" &
    pid=$!
    wait_for_socket "$sock"
    local warm="$SMOKE_TMP/serve-warm.out"
    timeout 60 "$serve" --socket "$sock" \
        --request "$slow_req" \
        --request "${same_req//IDN/r1}" \
        --request "${same_req//IDN/r2}" \
        --request "${same_req//IDN/r3}" >"$warm"
    # Responses arrive in completion order, which differs cold vs warm;
    # the lines themselves must be byte-identical.
    if ! diff -u <(sort "$cold") <(sort "$warm"); then
        echo "==> smoke: FAIL — warm responses differ from the cold run" >&2
        exit 1
    fi
    stats=$(timeout 60 "$serve" --socket "$sock" --stats)
    local replayed recomputed
    replayed=$(serve_stat "$stats" replayed)
    recomputed=$(serve_stat "$stats" recomputed)
    if [[ -z "$replayed" || "$replayed" -eq 0 || "${recomputed:-1}" -ne 0 ]]; then
        echo "==> smoke: FAIL — restart must answer from the journal (replayed=${replayed:-?}, recomputed=${recomputed:-?})" >&2
        echo "$stats" >&2
        exit 1
    fi
    echo "==> smoke: serve — warm restart OK ($replayed replayed, 0 recomputed)"
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true

    echo "==> smoke: serve — daemon 2: overload sheds with retry hints, SIGTERM drains"
    rm -f "$sock"
    "$serve" --serve --socket "$sock" --queue-depth 1 --jobs 1 \
        2>"$SMOKE_TMP/serve3.err" &
    pid=$!
    wait_for_socket "$sock"
    # Occupy the worker with a long run, then burst three quick distinct
    # requests at the 1-deep queue: one queues, two must shed.
    local burst="$SMOKE_TMP/serve-burst.out"
    timeout 60 "$serve" --socket "$sock" \
        --request '{"id":"long","benchmark":"gcc","spec":{"instructions":500000}}' \
        >"$SMOKE_TMP/serve-long.out" &
    local long_pid=$!
    sleep 0.3
    timeout 60 "$serve" --socket "$sock" \
        --request '{"id":"q1","benchmark":"mesa","spec":{"instructions":'"$instrs"',"seed":1}}' \
        --request '{"id":"q2","benchmark":"mesa","spec":{"instructions":'"$instrs"',"seed":2}}' \
        --request '{"id":"q3","benchmark":"mesa","spec":{"instructions":'"$instrs"',"seed":3}}' \
        >"$burst"
    local sheds hints
    sheds=$(grep -c '"status":"shed"' "$burst" || true)
    if [[ "$sheds" -ne 2 ]]; then
        echo "==> smoke: FAIL — expected 2 sheds from a 1-deep queue, got $sheds" >&2
        cat "$burst" >&2
        exit 1
    fi
    hints=$(sed -n 's/.*"retry_after_ms":\([0-9]*\).*/\1/p' "$burst" | awk '$1 < 1' | wc -l)
    if [[ "$hints" -ne 0 ]]; then
        echo "==> smoke: FAIL — a shed response carried no positive retry_after_ms" >&2
        cat "$burst" >&2
        exit 1
    fi
    wait "$long_pid"
    kill -TERM "$pid" 2>/dev/null || true
    if ! wait "$pid"; then
        echo "==> smoke: FAIL — SIGTERM drain must exit 0" >&2
        cat "$SMOKE_TMP/serve3.err" >&2
        exit 1
    fi
    echo "==> smoke: serve OK — dedup, warm restart, shedding, and drain all verified"
}

chaos() {
    local seed="${BITLINE_CHAOS_SEED:-42}"
    local instrs="${BITLINE_INSTRS:-2000}"
    CHAOS_TMP="$(mktemp -d)"
    trap 'rm -rf "$CHAOS_TMP"' EXIT

    echo "==> chaos: build bitline-sim and the chaos test harness"
    cargo build -q -p bitline-sim
    cargo test -q -p bitline-serve --test chaos --no-run

    # Disarmed-identity gate: arming every wired seam at probability 0
    # must leave the product bit-for-bit alone — the instrumentation is
    # free when it cannot fire.
    echo "==> chaos: disarmed identity — armed-at-@0 sweep vs unset"
    local sim=./target/debug/bitline-sim
    local ref="$CHAOS_TMP/ref.out" armed="$CHAOS_TMP/armed.out"
    "$sim" -b all -i "$instrs" -j 2 --checkpoint "$CHAOS_TMP/ref-ckpt" \
        >"$ref" 2>/dev/null
    BITLINE_FAILPOINTS='journal.append.write=shortwrite(5)@0;journal.append.fsync=err(EIO)@0;checkpoint.record=err(ENOSPC)@0;journal.atomic_write=err(ENOSPC)@0;pool.worker=delay(1ms)@0;traces.materialise=delay(1ms)@0' \
        "$sim" -b all -i "$instrs" -j 2 --checkpoint "$CHAOS_TMP/armed-ckpt" \
        >"$armed" 2>/dev/null
    if ! diff -u "$ref" "$armed"; then
        echo "==> chaos: FAIL — armed-at-@0 failpoints changed the output" >&2
        exit 1
    fi

    echo "==> chaos: soak at seed $seed"
    BITLINE_CHAOS_SEED="$seed" cargo test -q -p bitline-serve --test chaos

    # Soak mode: keep replaying the same schedule shape under fresh seeds
    # until the budget runs out; any seed that breaks an invariant is
    # reproducible by exporting it as BITLINE_CHAOS_SEED.
    if [[ -n "${BITLINE_CHAOS_SECONDS:-}" ]]; then
        local t_end=$((SECONDS + BITLINE_CHAOS_SECONDS))
        local iterations=0
        while [[ "$SECONDS" -lt "$t_end" ]]; do
            seed=$((seed + 1))
            iterations=$((iterations + 1))
            echo "==> chaos: soak iteration $iterations (seed $seed)"
            BITLINE_CHAOS_SEED="$seed" cargo test -q -p bitline-serve --test chaos
        done
        echo "==> chaos: soaked $iterations extra seed(s) in ${BITLINE_CHAOS_SECONDS}s"
    fi
    echo "==> chaos: OK — disarmed identity held, soak green (last seed $seed)"
}

hierarchy() {
    local instrs="${BITLINE_INSTRS:-2000}"
    local jobs_n
    jobs_n="$(nproc 2>/dev/null || echo 4)"
    if [[ "$jobs_n" -lt 2 ]]; then jobs_n=4; fi
    HIER_TMP="$(mktemp -d)"
    trap 'rm -rf "$HIER_TMP"' EXIT

    echo "==> hierarchy: build bitline-sim"
    cargo build -q -p bitline-sim
    local sim=./target/debug/bitline-sim

    # The golden is blessed on the two smallest workloads at 2000
    # instructions (crates/sim/tests/hierarchy_golden.rs); the same
    # configuration here must reproduce it byte-for-byte from the CLI.
    echo "==> hierarchy: table at jobs=1 vs the blessed golden"
    local h1="$HIER_TMP/h1.dat" hN="$HIER_TMP/hN.dat"
    BITLINE_SUITE=mesa,bisort BITLINE_INSTRS="$instrs" \
        "$sim" -j 1 hierarchy >"$h1" 2>/dev/null
    if ! diff -u crates/sim/tests/goldens/hierarchy.dat "$h1"; then
        echo "==> hierarchy: FAIL — the CLI table drifted from the blessed golden" >&2
        exit 1
    fi

    echo "==> hierarchy: table at jobs=$jobs_n"
    BITLINE_SUITE=mesa,bisort BITLINE_INSTRS="$instrs" \
        "$sim" -j "$jobs_n" hierarchy >"$hN" 2>/dev/null
    if ! diff -u "$h1" "$hN"; then
        echo "==> hierarchy: FAIL — the hierarchy table depends on the job count" >&2
        exit 1
    fi

    # Inertness: the default hierarchy flags must leave a single-level
    # sweep byte-identical to one that never mentions them.
    echo "==> hierarchy: single-level inertness under default flags"
    local bare="$HIER_TMP/bare.out" flagged="$HIER_TMP/flagged.out"
    "$sim" -b all -i "$instrs" -j "$jobs_n" >"$bare" 2>/dev/null
    "$sim" -b all -i "$instrs" -j "$jobs_n" \
        --levels 1 --leakage-mode full-vdd >"$flagged" 2>/dev/null
    if ! diff -u "$bare" "$flagged"; then
        echo "==> hierarchy: FAIL — default hierarchy flags changed single-level output" >&2
        exit 1
    fi

    # A deep, mode-priced run must actually report the outer levels.
    echo "==> hierarchy: 3-level drowsy run reports L2 and L3"
    local deep="$HIER_TMP/deep.out"
    "$sim" -b gcc -i "$instrs" --levels 3 --l2-policy gated:100 \
        --leakage-mode drowsy >"$deep" 2>/dev/null
    if ! grep -q "L2:" "$deep" || ! grep -q "L3:" "$deep"; then
        echo "==> hierarchy: FAIL — a 3-level run must print L2 and L3 lines" >&2
        cat "$deep" >&2
        exit 1
    fi
    echo "==> hierarchy: OK — golden, job-count identity, inertness, and depth all verified"
}

if [[ "${1:-}" == "smoke" ]]; then
    smoke
    exit 0
fi

if [[ "${1:-}" == "chaos" ]]; then
    chaos
    exit 0
fi

voltage() {
    local instrs="${BITLINE_INSTRS:-2000}"
    local jobs_n
    jobs_n="$(nproc 2>/dev/null || echo 4)"
    if [[ "$jobs_n" -lt 2 ]]; then jobs_n=4; fi
    VOLT_TMP="$(mktemp -d)"
    trap 'rm -rf "$VOLT_TMP"' EXIT

    echo "==> voltage: build bitline-sim"
    cargo build -q -p bitline-sim
    local sim=./target/debug/bitline-sim

    # The golden is blessed on the two smallest workloads at 2000
    # instructions (crates/sim/tests/voltage_golden.rs); the same
    # configuration here must reproduce it byte-for-byte from the CLI.
    echo "==> voltage: table at jobs=1 vs the blessed golden"
    local v1="$VOLT_TMP/v1.dat" vN="$VOLT_TMP/vN.dat"
    BITLINE_SUITE=mesa,bisort BITLINE_INSTRS="$instrs" \
        "$sim" -j 1 voltage >"$v1" 2>/dev/null
    if ! diff -u crates/sim/tests/goldens/voltage.dat "$v1"; then
        echo "==> voltage: FAIL — the CLI table drifted from the blessed golden" >&2
        exit 1
    fi

    echo "==> voltage: table at jobs=$jobs_n"
    BITLINE_SUITE=mesa,bisort BITLINE_INSTRS="$instrs" \
        "$sim" -j "$jobs_n" voltage >"$vN" 2>/dev/null
    if ! diff -u "$v1" "$vN"; then
        echo "==> voltage: FAIL — the voltage table depends on the job count" >&2
        exit 1
    fi

    # Inertness: the nominal supply must leave a sweep byte-identical to
    # one that never mentions the flag.
    echo "==> voltage: nominal-Vdd inertness under an explicit --vdd 1.0"
    local bare="$VOLT_TMP/bare.out" flagged="$VOLT_TMP/flagged.out"
    "$sim" -b all -i "$instrs" -j "$jobs_n" >"$bare" 2>/dev/null
    "$sim" -b all -i "$instrs" -j "$jobs_n" --vdd 1.0 >"$flagged" 2>/dev/null
    if ! diff -u "$bare" "$flagged"; then
        echo "==> voltage: FAIL — an explicit nominal supply changed sweep output" >&2
        exit 1
    fi

    # Non-finite supplies die at the flag parser, not deep in a run.
    echo "==> voltage: non-finite --vdd is rejected at parse time"
    if "$sim" -b mesa -i 100 --vdd nan >/dev/null 2>"$VOLT_TMP/nan.err"; then
        echo "==> voltage: FAIL — --vdd nan must be rejected" >&2
        exit 1
    fi
    if ! grep -q "finite" "$VOLT_TMP/nan.err"; then
        echo "==> voltage: FAIL — the rejection must name the non-finite input" >&2
        cat "$VOLT_TMP/nan.err" >&2
        exit 1
    fi

    # Governor leg: a forced deep undervolt must fire the guardband
    # ladder — escalations move, replays resolve through detect-and-
    # replay — and every vdd.* counter must agree across job counts.
    echo "==> voltage: governor escalates under a deep undervolt (jobs=1 vs jobs=$jobs_n)"
    local g1="$VOLT_TMP/gov1.jsonl" gN="$VOLT_TMP/govN.jsonl"
    BITLINE_SUITE=mesa BITLINE_INSTRS="$instrs" \
        "$sim" -b all -j 1 --vdd 0.8 --vdd-governor --metrics "$g1" \
        >"$VOLT_TMP/gov1.out" 2>/dev/null
    BITLINE_SUITE=mesa BITLINE_INSTRS="$instrs" \
        "$sim" -b all -j "$jobs_n" --vdd 0.8 --vdd-governor --metrics "$gN" \
        >"$VOLT_TMP/govN.out" 2>/dev/null
    if ! diff -u "$VOLT_TMP/gov1.out" "$VOLT_TMP/govN.out"; then
        echo "==> voltage: FAIL — a governed sweep depends on the job count" >&2
        exit 1
    fi
    if ! "$sim" --validate-metrics "$g1"; then
        echo "==> voltage: FAIL — governed metrics are not schema-valid" >&2
        exit 1
    fi
    local name v1c vNc
    for name in vdd.d.upsets vdd.d.replays vdd.d.sdc vdd.d.escalations \
        vdd.d.deescalations vdd.d.pinned_subarrays vdd.i.upsets \
        vdd.i.escalations; do
        v1c=$(metric_value "$g1" "$name")
        vNc=$(metric_value "$gN" "$name")
        if ! grep -q "\"name\":\"$name\"" "$g1"; then
            echo "==> voltage: FAIL — counter $name missing from governed export" >&2
            exit 1
        fi
        if [[ "$v1c" -ne "$vNc" ]]; then
            echo "==> voltage: FAIL — $name differs across job counts ($v1c vs $vNc)" >&2
            exit 1
        fi
    done
    if [[ "$(metric_value "$g1" vdd.d.escalations)" -eq 0 ]]; then
        echo "==> voltage: FAIL — a 0.8 Vdd governed run must escalate the ladder" >&2
        exit 1
    fi
    if [[ "$(metric_value "$g1" vdd.d.upsets)" -eq 0 ]]; then
        echo "==> voltage: FAIL — a 0.8 Vdd run must mis-sense speculative reads" >&2
        exit 1
    fi
    echo "==> voltage: OK — golden, job-count identity, inertness, validation," \
        "and governor escalation all verified"
}

if [[ "${1:-}" == "hierarchy" ]]; then
    hierarchy
    exit 0
fi

if [[ "${1:-}" == "voltage" ]]; then
    voltage
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all green"
